// Concurrent background-work pipeline (concurrent disjoint merges + pooled
// flush builds) and its error-handling contract:
//   * >= 2 merges over disjoint component ranges provably BUILD at the same
//     time on one tree (gated filesystem makes the overlap deterministic);
//   * a pooled flush costs the writer only the generation swap — the build
//     runs on the executor while readers keep seeing the sealed generation;
//   * once a sticky background error is latched, queued and cascading merge
//     jobs short-circuit instead of scheduling doomed work;
//   * deferred-deletion (reclaimer drain) failures latch and surface through
//     WaitForMerges()/writer gating instead of vanishing;
//   * a TSan-clean stress: continuous ingestion + concurrent merges + pooled
//     flushes under readers holding ReadViews.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/task_pool.h"
#include "lsm/lsm_tree.h"

namespace tc {
namespace {

std::string S(const Buffer& b) { return std::string(b.begin(), b.end()); }

// Parses "<dir>/<name>.c<min>-<max>.btree" written by component builders.
// Deliberately rejects sibling files (".btree.valid" markers, WAL segments)
// so the hooks fire exactly once per component build.
bool ParseComponentCids(const std::string& path, uint64_t* cid_min,
                        uint64_t* cid_max) {
  constexpr const char* kSuffix = ".btree";
  if (path.size() < 6 || path.compare(path.size() - 6, 6, kSuffix) != 0) {
    return false;
  }
  size_t dot_c = path.rfind(".c");
  if (dot_c == std::string::npos) return false;
  return std::sscanf(path.c_str() + dot_c + 2, "%" PRIu64 "-%" PRIu64, cid_min,
                     cid_max) == 2;
}

bool IsMergeOutput(const std::string& path) {
  uint64_t lo = 0, hi = 0;
  return ParseComponentCids(path, &lo, &hi) && lo != hi;
}

bool IsFlushOutput(const std::string& path) {
  uint64_t lo = 0, hi = 0;
  return ParseComponentCids(path, &lo, &hi) && lo == hi;
}

/// Filesystem wrapper with test hooks: a Create hook (may block a pool thread
/// at a deterministic point or inject a build failure) and a Delete hook
/// (injects deferred-deletion failures).
class HookFs final : public FileSystem {
 public:
  explicit HookFs(std::shared_ptr<FileSystem> inner) : inner_(std::move(inner)) {}

  std::function<Status(const std::string&)> create_hook;
  std::function<Status(const std::string&)> delete_hook;

  Result<std::unique_ptr<File>> Open(const std::string& path) override {
    return inner_->Open(path);
  }
  Result<std::unique_ptr<File>> Create(const std::string& path) override {
    if (create_hook) {
      TC_RETURN_IF_ERROR(create_hook(path));
    }
    return inner_->Create(path);
  }
  Status Delete(const std::string& path) override {
    if (delete_hook) {
      TC_RETURN_IF_ERROR(delete_hook(path));
    }
    return inner_->Delete(path);
  }
  bool Exists(const std::string& path) const override {
    return inner_->Exists(path);
  }
  Result<std::vector<std::string>> List(const std::string& dir,
                                        const std::string& prefix) const override {
    return inner_->List(dir, prefix);
  }
  Status CreateDir(const std::string& path) override {
    return inner_->CreateDir(path);
  }
  Result<uint64_t> FileSize(const std::string& path) const override {
    return inner_->FileSize(path);
  }

 private:
  std::shared_ptr<FileSystem> inner_;
};

struct Fixture {
  std::shared_ptr<HookFs> fs =
      std::make_shared<HookFs>(MakeMemFileSystem());
  BufferCache cache{4096, 2048};
  std::unique_ptr<TaskPool> pool;

  std::unique_ptr<LsmTree> Open(std::shared_ptr<MergePolicy> policy,
                                size_t pool_threads, size_t max_merges,
                                size_t max_pending = 2,
                                size_t memtable_bytes = 1 << 20,
                                bool capture_old = false, bool use_wal = true,
                                bool use_pool = true) {
    if (use_pool && pool == nullptr) pool = std::make_unique<TaskPool>(pool_threads);
    LsmTreeOptions o;
    o.fs = fs;
    o.cache = &cache;
    o.dir = "lsm";
    o.name = "t";
    o.page_size = 4096;
    o.memtable_budget_bytes = memtable_bytes;
    o.merge_policy = std::move(policy);
    o.merge_pool = use_pool ? pool.get() : nullptr;
    o.max_concurrent_merges = max_merges;
    o.max_pending_flush_builds = max_pending;
    o.capture_old_versions = capture_old;
    o.use_wal = use_wal;
    o.wal_sync_every = 0;
    return LsmTree::Open(std::move(o)).ValueOrDie();
  }

  size_t ComponentFilesOnDisk() {
    auto files = fs->List("lsm", "t.c").ValueOrDie();
    size_t n = 0;
    for (const auto& f : files) {
      if (f.size() >= 6 && f.compare(f.size() - 6, 6, ".btree") == 0) ++n;
    }
    return n;
  }

  Status FlushBatch(LsmTree* t, int64_t base, int n, const std::string& v) {
    for (int i = 0; i < n; ++i) {
      TC_RETURN_IF_ERROR(t->Insert(BtreeKey{base + i, 0}, v));
    }
    return t->Flush();
  }
};

// Two disjoint merges must BUILD concurrently: the gate holds every merge
// build inside Create() until two distinct merge outputs have arrived, so the
// concurrent-merge high-water mark is >= 2 by construction — the scheduler
// just has to actually propose and launch the second disjoint plan while the
// first is mid-rewrite (which a single-inflight scheduler never does).
TEST(MergeConcurrency, TwoDisjointMergesBuildConcurrently) {
  Fixture fx;
  std::mutex mu;
  std::condition_variable cv;
  int merge_creates = 0;
  fx.fs->create_hook = [&](const std::string& path) -> Status {
    if (!IsMergeOutput(path)) return Status::OK();
    std::unique_lock<std::mutex> lock(mu);
    ++merge_creates;
    cv.notify_all();
    // Generous timeout: on a failure the test fails the assertions below
    // instead of hanging the suite.
    cv.wait_for(lock, std::chrono::seconds(30),
                [&] { return merge_creates >= 2; });
    return Status::OK();
  };
  // Pool: 2 blocked merge builds + 1 flush build in flight.
  auto t = fx.Open(MakeTieredMergePolicy(3, 2), /*pool_threads=*/3,
                   /*max_merges=*/2);
  std::string v(64, 'v');
  // Four equal flushes: after the second installs, the tier [f2, f1] merges
  // (and blocks in the gate); flushes three and four form a second, disjoint
  // tier in front of the claimed pair, launching the second merge.
  for (int f = 0; f < 4; ++f) {
    ASSERT_TRUE(fx.FlushBatch(t.get(), f * 8, 8, v).ok());
  }
  ASSERT_TRUE(t->WaitForMerges().ok());

  LsmStats s = t->stats();
  EXPECT_GE(s.concurrent_merges_high_water, 2u);
  EXPECT_GE(s.merge_count, 2u);
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_GE(merge_creates, 2);
  }
  // Every key still resolves; the settled tree owns exactly its own files.
  for (int64_t k = 0; k < 32; ++k) {
    EXPECT_TRUE(t->Get(BtreeKey{k, 0}).ValueOrDie().has_value()) << k;
  }
  t->View();  // release-drain any leftovers
  EXPECT_EQ(fx.ComponentFilesOnDisk(), t->component_count());
}

// A pooled flush costs the writer only the generation swap: Flush() returns
// while the build is still stuck in the gate, the sealed generation remains
// readable (snapshot from the flush queue), and the old-version capture of a
// following upsert resolves against the pending generation rather than the
// (not yet updated) disk.
TEST(MergeConcurrency, PooledFlushDoesNotBlockWriterBeyondSwap) {
  Fixture fx;
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  fx.fs->create_hook = [&](const std::string& path) -> Status {
    if (!IsFlushOutput(path)) return Status::OK();
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return release; });
    return Status::OK();
  };
  auto t = fx.Open(MakeNoMergePolicy(), /*pool_threads=*/2, /*max_merges=*/1,
                   /*max_pending=*/2, /*memtable_bytes=*/1 << 20,
                   /*capture_old=*/true);
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "v1").ok());
  // Returns after the swap even though the build cannot finish yet.
  ASSERT_TRUE(t->Flush().ok());
  EXPECT_EQ(t->component_count(), 0u);  // nothing installed yet
  // The sealed generation is still readable...
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "v1");
  // ...and it shadows the disk for old-version capture.
  std::optional<Buffer> old;
  ASSERT_TRUE(t->Upsert(BtreeKey{1, 0}, "v2", &old).ok());
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(S(*old), "v1");

  // Backpressure: with one build pending, a second Flush still swaps
  // (queue depth 2), but a third flush must stall until the gate opens.
  ASSERT_TRUE(t->Flush().ok());
  std::atomic<bool> third_done{false};
  std::thread third([&] {
    ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "v").ok());
    ASSERT_TRUE(t->Flush().ok());
    third_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(third_done.load(std::memory_order_acquire));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  third.join();
  EXPECT_TRUE(third_done.load());
  ASSERT_TRUE(t->WaitForMerges().ok());
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "v2");
  LsmStats s = t->stats();
  EXPECT_EQ(s.flush_count, 3u);
  EXPECT_GE(s.flush_queue_high_water, 2u);
}

// Regression (cascade resubmit): once any background job latches the sticky
// error, a concurrently-running merge must NOT cascade-schedule new merges on
// completion. Deterministic sequencing: merge A ([c1-c2]) and merge B
// ([c3-c4]) both enter the gate; A's build is failed first and the test
// waits until the error is latched (writers become gated) before releasing
// B. B installs fine — but its cascade, which would propose merging B's
// output with A's now-unclaimed inputs, must short-circuit.
TEST(MergeConcurrency, CascadeShortCircuitsAfterStickyError) {
  Fixture fx;
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool release_b = false;
  int merge_attempts = 0;
  fx.fs->create_hook = [&](const std::string& path) -> Status {
    uint64_t lo = 0, hi = 0;
    if (!ParseComponentCids(path, &lo, &hi) || lo == hi) return Status::OK();
    std::unique_lock<std::mutex> lock(mu);
    ++merge_attempts;
    ++arrived;
    cv.notify_all();
    if (lo == 1) {  // merge A over the oldest pair
      cv.wait_for(lock, std::chrono::seconds(30), [&] { return arrived >= 2; });
      return Status::IOError("injected merge-build failure");
    }
    // merge B: held until the test observed A's latched error.
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return release_b; });
    return Status::OK();
  };
  auto t = fx.Open(MakeTieredMergePolicy(3, 2), /*pool_threads=*/3,
                   /*max_merges=*/2);
  std::string v(64, 'v');
  for (int f = 0; f < 4; ++f) {
    ASSERT_TRUE(fx.FlushBatch(t.get(), f * 8, 8, v).ok());
  }
  // Both merges are in the gate now (A waits for B's arrival, then fails).
  // Wait until A's failure is latched: writers are gated by the sticky error.
  for (int spin = 0; spin < 5000; ++spin) {
    Status st = t->Insert(BtreeKey{1000 + spin, 0}, "probe");
    if (!st.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(t->Insert(BtreeKey{9999, 0}, "probe").ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    release_b = true;
  }
  cv.notify_all();
  Status st = t->WaitForMerges();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected merge-build failure"), std::string::npos);
  // B installed; A failed; and crucially B's cascade did NOT schedule the
  // third (doomed) merge the policy would otherwise propose.
  EXPECT_EQ(t->stats().merge_count, 1u);
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(merge_attempts, 2);
  }
}

// Regression (dropped drain status): a component-file deletion failure during
// the post-merge reclaimer drain must latch and surface — through
// WaitForMerges and the writer gate — instead of being silently ignored.
TEST(MergeConcurrency, DrainFailureSurfacesAsBackgroundError) {
  Fixture fx;
  std::atomic<bool> fail_deletes{false};
  fx.fs->delete_hook = [&](const std::string& path) -> Status {
    if (fail_deletes.load() && path.find(".btree") != std::string::npos) {
      return Status::IOError("injected delete failure");
    }
    return Status::OK();
  };
  auto t = fx.Open(MakeConstantMergePolicy(2), /*pool_threads=*/1,
                   /*max_merges=*/1);
  std::string v(64, 'v');
  for (int f = 0; f < 2; ++f) {
    ASSERT_TRUE(fx.FlushBatch(t.get(), f * 8, 8, v).ok());
  }
  ASSERT_TRUE(t->WaitForMerges().ok());  // healthy so far
  fail_deletes.store(true);
  // The third flush trips constant(2); the merge succeeds but retiring its
  // inputs fails in the drain.
  ASSERT_TRUE(fx.FlushBatch(t.get(), 16, 8, v).ok());
  Status st = t->WaitForMerges();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected delete failure"), std::string::npos);
  // The sticky error gates writers too.
  EXPECT_FALSE(t->Insert(BtreeKey{999, 0}, "x").ok());
  // The merge itself did land (the data is intact and readable).
  EXPECT_EQ(t->stats().merge_count, 1u);
  for (int64_t k = 0; k < 24; ++k) {
    EXPECT_TRUE(t->Get(BtreeKey{k, 0}).ValueOrDie().has_value()) << k;
  }
  fail_deletes.store(false);  // let teardown reclaim
}

// TSan-target stress (wired into the thread-sanitizer CI job): continuous
// ingestion with pooled flush builds and up to three concurrent merges,
// while readers hold ReadViews across batches of lookups and scans. Asserts
// no torn payloads, versions never regress, coherent full scans, and that
// WaitForMerges drains every job with the settled tree owning exactly its
// live files.
TEST(MergeConcurrency, StressIngestMergeReadUnderViews) {
  Fixture fx;
  auto t = fx.Open(MakeTieredMergePolicy(3, 2), /*pool_threads=*/4,
                   /*max_merges=*/3, /*max_pending=*/2,
                   /*memtable_bytes=*/2 * 1024);
  constexpr int64_t kKeys = 48;
  constexpr uint64_t kRounds = 50;
  auto payload = [](int64_t key, uint64_t version) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "k%" PRId64 ".v%" PRIu64 ".", key, version);
    return std::string(buf) + std::string(48, 'x');
  };
  auto parse = [](const std::string& s, int64_t* key, uint64_t* version) {
    return std::sscanf(s.c_str(), "k%" PRId64 ".v%" PRIu64 ".", key, version) == 2;
  };
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(t->Upsert(BtreeKey{k, 0}, payload(k, 1), nullptr).ok());
  }

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  auto fail = [&](const char* what) {
    failed.store(true);
    ADD_FAILURE() << what;
  };
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(50 + r);
      std::map<int64_t, uint64_t> floor;
      while (!done.load(std::memory_order_acquire) && !failed.load()) {
        // Hold one view across a batch so merges retire components under
        // live pins.
        auto view = t->AcquireView();
        for (int i = 0; i < 12 && !failed.load(); ++i) {
          int64_t k = static_cast<int64_t>(rng.Uniform(kKeys));
          auto got = view->Get(BtreeKey{k, 0});
          if (!got.ok() || !got.value().has_value()) {
            return fail("lookup lost a key");
          }
          int64_t pk = -1;
          uint64_t pv = 0;
          if (!parse(S(*got.value()), &pk, &pv) || pk != k) {
            return fail("torn or misdirected payload");
          }
          // Within one view, a key's version is fixed; across views it only
          // moves forward.
          uint64_t& f = floor[k];
          if (pv < f) return fail("version went backwards");
          f = pv;
        }
        // Full scan over the same pinned view: coherent and complete.
        LsmTree::Iterator it(view);
        if (!it.SeekToFirst().ok()) return fail("seek failed");
        int64_t prev = -1;
        size_t n = 0;
        while (it.Valid()) {
          if (it.key().a <= prev) return fail("scan keys not increasing");
          prev = it.key().a;
          ++n;
          if (!it.Next().ok()) return fail("next failed");
        }
        if (n != static_cast<size_t>(kKeys)) {
          return fail("scan lost or duplicated keys");
        }
      }
    });
  }
  for (uint64_t vround = 2; vround <= kRounds && !failed.load(); ++vround) {
    for (int64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(t->Upsert(BtreeKey{k, 0}, payload(k, vround), nullptr).ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  ASSERT_FALSE(failed.load());

  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->WaitForMerges().ok());
  LsmStats s = t->stats();
  EXPECT_GT(s.merge_count, 0u);
  EXPECT_GE(s.flush_queue_high_water, 1u);
  for (int64_t k = 0; k < kKeys; ++k) {
    auto got = t->Get(BtreeKey{k, 0}).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(S(*got), payload(k, kRounds)) << k;
  }
  // Everything drained and every view released: on-disk files == live
  // components (no leaked retirees, no premature deletions of live ones).
  t->View();
  EXPECT_EQ(fx.ComponentFilesOnDisk(), t->component_count());
}

// Out-of-order completion: a long merge over an OLD disjoint range installs
// after newer flushes and a newer merge already reshaped the vector — the
// identity-based install must splice it into the right slot (cid order).
TEST(MergeConcurrency, SlowOldMergeInstallsAfterNewerWork) {
  Fixture fx;
  std::mutex mu;
  std::condition_variable cv;
  bool release_old = false;
  fx.fs->create_hook = [&](const std::string& path) -> Status {
    uint64_t lo = 0, hi = 0;
    if (!ParseComponentCids(path, &lo, &hi) || lo == hi) return Status::OK();
    if (lo == 1) {  // the merge over the oldest pair: hold it
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::seconds(30), [&] { return release_old; });
    }
    return Status::OK();
  };
  auto t = fx.Open(MakeTieredMergePolicy(3, 2), /*pool_threads=*/3,
                   /*max_merges=*/2);
  std::string v(64, 'v');
  // f1+f2 trigger the gated old merge; f3+f4 trigger a second merge that
  // completes (and installs) while the old one is still stuck.
  for (int f = 0; f < 4; ++f) {
    ASSERT_TRUE(fx.FlushBatch(t.get(), f * 8, 8, v).ok());
  }
  // Wait until the newer merge landed, then free the old one.
  for (int spin = 0; spin < 5000 && t->stats().merge_count < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(t->stats().merge_count, 1u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release_old = true;
  }
  cv.notify_all();
  ASSERT_TRUE(t->WaitForMerges().ok());
  EXPECT_GE(t->stats().merge_count, 2u);
  // Newest-first component order must still be strict descending cid.
  auto view = t->View();
  uint64_t prev = UINT64_MAX;
  for (const auto& c : view.components()) {
    EXPECT_LT(c->meta().cid_max, prev);
    prev = c->meta().cid_max;
  }
  for (int64_t k = 0; k < 32; ++k) {
    EXPECT_TRUE(t->Get(BtreeKey{k, 0}).ValueOrDie().has_value()) << k;
  }
}

// Regression: a WAL-less tree (how the pk/secondary index trees run) has no
// log segment to replay a sealed generation from, so clean teardown must
// DRAIN its queued flush builds instead of canceling them — otherwise a
// completed Flush() silently loses its data. The blocker keeps the build
// queued until the destructor is already waiting.
TEST(MergeConcurrency, TeardownDrainsFlushBuildsOfWalLessTrees) {
  Fixture fx;
  fx.pool = std::make_unique<TaskPool>(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  fx.pool->Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return release; });
  });
  auto t = fx.Open(MakeNoMergePolicy(), /*pool_threads=*/1, /*max_merges=*/1,
                   /*max_pending=*/2, /*memtable_bytes=*/1 << 20,
                   /*capture_old=*/false, /*use_wal=*/false);
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "must-survive").ok());
  ASSERT_TRUE(t->Flush().ok());  // sealed; build queued behind the blocker
  EXPECT_EQ(fx.ComponentFilesOnDisk(), 0u);
  std::thread destroyer([&] { t.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  destroyer.join();
  // The build ran during teardown: the component exists, so reopening (no
  // pool, no WAL) still finds the record.
  EXPECT_EQ(fx.ComponentFilesOnDisk(), 1u);
  auto reopened =
      fx.Open(MakeNoMergePolicy(), /*pool_threads=*/1, /*max_merges=*/1,
              /*max_pending=*/2, /*memtable_bytes=*/1 << 20,
              /*capture_old=*/false, /*use_wal=*/false, /*use_pool=*/false);
  EXPECT_EQ(S(*reopened->Get(BtreeKey{1, 0}).ValueOrDie()), "must-survive");
}

// Flush builds must never starve behind queued merges: they ride the task
// pool's HIGH lane because a stalled flush build is writer backpressure
// (TC_FLUSH_PENDING). One worker thread makes the discrimination
// deterministic — gate the FIRST flush build until the writer has queued
// four flushes, then watch the drain order. With the priority lane the
// worker builds every queued flush before touching the merge the second
// install scheduled; a FIFO pool would interleave the merge after flush two.
TEST(MergeConcurrency, FlushBuildsOutrankQueuedMergesUnderStorm) {
  Fixture fx;
  std::mutex mu;
  std::condition_variable cv;
  bool writer_done = false;
  std::vector<char> creates;  // 'f' = flush output, 'm' = merge output
  fx.fs->create_hook = [&](const std::string& path) -> Status {
    bool flush = IsFlushOutput(path);
    bool merge = IsMergeOutput(path);
    if (!flush && !merge) return Status::OK();
    std::unique_lock<std::mutex> lock(mu);
    if (flush && creates.empty()) {
      // Hold the first build until the writer queued the whole storm, so
      // the single worker then drains a fully-populated queue.
      cv.wait_for(lock, std::chrono::seconds(30), [&] { return writer_done; });
    }
    creates.push_back(flush ? 'f' : 'm');
    return Status::OK();
  };
  // Tiered(3, 2): the second install proposes a pair merge, which a FIFO
  // queue would run before the third and fourth flush builds.
  auto t = fx.Open(MakeTieredMergePolicy(3, 2), /*pool_threads=*/1,
                   /*max_merges=*/2, /*max_pending=*/8);
  std::string v(64, 'v');
  for (int f = 0; f < 4; ++f) {
    ASSERT_TRUE(fx.FlushBatch(t.get(), f * 8, 8, v).ok());
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    writer_done = true;
  }
  cv.notify_all();
  ASSERT_TRUE(t->WaitForMerges().ok());

  std::vector<char> order;
  {
    std::lock_guard<std::mutex> lock(mu);
    order = creates;
  }
  ASSERT_GE(order.size(), 5u);
  // Every flush build ran before the first merge rewrite.
  size_t first_merge = order.size();
  size_t last_flush = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 'm' && first_merge == order.size()) first_merge = i;
    if (order[i] == 'f') last_flush = i;
  }
  EXPECT_LT(last_flush, first_merge)
      << std::string(order.begin(), order.end());
  LsmStats s = t->stats();
  EXPECT_EQ(s.flush_count, 4u);
  EXPECT_GE(s.merge_count, 1u);
  for (int64_t k = 0; k < 32; ++k) {
    EXPECT_TRUE(t->Get(BtreeKey{k, 0}).ValueOrDie().has_value()) << k;
  }
}

}  // namespace
}  // namespace tc
