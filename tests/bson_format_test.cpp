#include <gtest/gtest.h>

#include "adm/parser.h"
#include "adm/printer.h"
#include "format/bson_format.h"
#include "tests/test_util.h"

namespace tc {
namespace {

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }

TEST(BsonFormat, RoundTripCoreTypes) {
  AdmValue rec = R(R"({"a": 1, "b": "str", "c": true, "d": null,
                      "e": 2.5, "f": [1, 2, {"g": "h"}]})");
  Buffer b;
  ASSERT_TRUE(EncodeBsonRecord(rec, &b).ok());
  AdmValue out;
  ASSERT_TRUE(DecodeBsonRecord(b.data(), b.size(), &out).ok());
  EXPECT_EQ(PrintAdm(out), PrintAdm(rec));
}

TEST(BsonFormat, WireLayoutMatchesBsonSpec) {
  // {"a": 1 (int64)} == \x10\x00\x00\x00 \x12 a\x00 \x01..\x00 \x00
  AdmValue rec = AdmValue::Object();
  rec.AddField("a", AdmValue::BigInt(1));
  Buffer b;
  ASSERT_TRUE(EncodeBsonRecord(rec, &b).ok());
  ASSERT_EQ(b.size(), 16u);
  EXPECT_EQ(GetFixed32(b.data()), 16u);  // total document length
  EXPECT_EQ(b[4], 0x12);                 // int64 element
  EXPECT_EQ(b[5], 'a');
  EXPECT_EQ(b[6], 0x00);
  EXPECT_EQ(GetFixed64(b.data() + 7), 1u);
  EXPECT_EQ(b[15], 0x00);  // document terminator
}

TEST(BsonFormat, StringsAreNulTerminatedWithLength) {
  AdmValue rec = AdmValue::Object();
  rec.AddField("s", AdmValue::String("hi"));
  Buffer b;
  ASSERT_TRUE(EncodeBsonRecord(rec, &b).ok());
  // 4(len) + 1(type) + 2("s\0") + 4(strlen) + 3("hi\0") + 1(term)
  EXPECT_EQ(b.size(), 4u + 1 + 2 + 4 + 3 + 1);
  EXPECT_EQ(GetFixed32(b.data() + 7), 3u);  // "hi" + NUL
}

TEST(BsonFormat, FieldNamesRepeatPerRecord) {
  // BSON (like any self-describing format) embeds names in every record —
  // this is the redundancy the Figure 16 "MongoDB" bar carries.
  AdmValue rec = AdmValue::Object();
  rec.AddField("a_long_field_name_here", AdmValue::BigInt(1));
  Buffer one;
  ASSERT_TRUE(EncodeBsonRecord(rec, &one).ok());
  EXPECT_GT(one.size(), 22u + 8u);
}

TEST(BsonFormat, MultisetBecomesArray) {
  AdmValue rec = AdmValue::Object();
  AdmValue ms = AdmValue::Multiset();
  ms.Append(AdmValue::BigInt(1));
  rec.AddField("m", std::move(ms));
  Buffer b;
  ASSERT_TRUE(EncodeBsonRecord(rec, &b).ok());
  AdmValue out;
  ASSERT_TRUE(DecodeBsonRecord(b.data(), b.size(), &out).ok());
  EXPECT_EQ(out.FindField("m")->tag(), AdmTag::kArray);  // documented lossiness
}

TEST(BsonFormat, UuidAsBinarySubtype4) {
  AdmValue rec = AdmValue::Object();
  rec.AddField("u", AdmValue::Uuid(std::string(16, '\x07')));
  Buffer b;
  ASSERT_TRUE(EncodeBsonRecord(rec, &b).ok());
  AdmValue out;
  ASSERT_TRUE(DecodeBsonRecord(b.data(), b.size(), &out).ok());
  EXPECT_EQ(out.FindField("u")->tag(), AdmTag::kUuid);
}

TEST(BsonFormat, RejectsCorruption) {
  AdmValue rec = R(R"({"a": [1, 2, 3]})");
  Buffer b;
  ASSERT_TRUE(EncodeBsonRecord(rec, &b).ok());
  AdmValue out;
  EXPECT_FALSE(DecodeBsonRecord(b.data(), b.size() - 2, &out).ok());
  Buffer bad = b;
  bad[4] = 0x77;  // unknown element type
  EXPECT_FALSE(DecodeBsonRecord(bad.data(), bad.size(), &out).ok());
}

TEST(BsonFormat, PropertyRoundTripCompatibleSubset) {
  Rng rng(4242);
  for (int i = 0; i < 200; ++i) {
    // Restrict to BSON-preserving types.
    AdmValue rec = AdmValue::Object();
    size_t n = 1 + rng.Uniform(8);
    for (size_t f = 0; f < n; ++f) {
      AdmValue v;
      switch (rng.Uniform(5)) {
        case 0: v = AdmValue::BigInt(static_cast<int64_t>(rng.Next())); break;
        case 1: v = AdmValue::Double(rng.NextDouble()); break;
        case 2: v = AdmValue::String(rng.AlphaString(rng.Uniform(20))); break;
        case 3: v = AdmValue::Boolean(rng.Bernoulli(0.5)); break;
        default: v = AdmValue::Null(); break;
      }
      rec.AddField("f" + std::to_string(f), std::move(v));
    }
    Buffer b;
    ASSERT_TRUE(EncodeBsonRecord(rec, &b).ok());
    AdmValue out;
    ASSERT_TRUE(DecodeBsonRecord(b.data(), b.size(), &out).ok());
    EXPECT_EQ(out, rec);
  }
}

}  // namespace
}  // namespace tc
