#include <gtest/gtest.h>

#include "adm/parser.h"
#include "adm/printer.h"
#include "format/pax_page.h"
#include "tests/test_util.h"

namespace tc {
namespace {

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }

std::vector<std::pair<std::string, AdmTag>> SensorColumns() {
  return {{"id", AdmTag::kBigInt},
          {"temp", AdmTag::kDouble},
          {"label", AdmTag::kString}};
}

TEST(PaxPage, BuildAndReadBack) {
  PaxPageBuilder b(SensorColumns());
  ASSERT_TRUE(b.Add(R(R"({"id": 1, "temp": 20.5, "label": "a"})")).ok());
  ASSERT_TRUE(b.Add(R(R"({"id": 2, "temp": 21.5})")).ok());  // label absent
  ASSERT_TRUE(b.Add(R(R"({"id": 3, "label": "ccc"})")).ok());
  Buffer page;
  b.Finish(&page);

  PaxPageView view(page.data(), page.size());
  ASSERT_TRUE(view.Validate().ok());
  EXPECT_EQ(view.column_count(), 3);
  EXPECT_EQ(view.record_count(), 3);
  int id = view.FindColumn("id");
  int temp = view.FindColumn("temp");
  int label = view.FindColumn("label");
  ASSERT_GE(id, 0);
  ASSERT_GE(temp, 0);
  ASSERT_GE(label, 0);
  EXPECT_EQ(view.FindColumn("nope"), -1);

  EXPECT_EQ(view.Get(id, 0).ValueOrDie().int_value(), 1);
  EXPECT_EQ(view.Get(id, 2).ValueOrDie().int_value(), 3);
  EXPECT_DOUBLE_EQ(view.Get(temp, 1).ValueOrDie().double_value(), 21.5);
  EXPECT_EQ(view.Get(temp, 2).ValueOrDie().tag(), AdmTag::kMissing);
  EXPECT_EQ(view.Get(label, 0).ValueOrDie().string_value(), "a");
  EXPECT_EQ(view.Get(label, 1).ValueOrDie().tag(), AdmTag::kMissing);
  EXPECT_EQ(view.Get(label, 2).ValueOrDie().string_value(), "ccc");
  EXPECT_EQ(b.spilled_count(), 0u);
}

TEST(PaxPage, SumColumnFastPath) {
  PaxPageBuilder b({{"v", AdmTag::kDouble}});
  double expected = 0;
  for (int i = 0; i < 1000; ++i) {
    double v = i * 0.5;
    expected += v;
    AdmValue rec = AdmValue::Object();
    rec.AddField("v", AdmValue::Double(v));
    ASSERT_TRUE(b.Add(rec).ok());
  }
  Buffer page;
  b.Finish(&page);
  PaxPageView view(page.data(), page.size());
  EXPECT_DOUBLE_EQ(view.SumColumn(view.FindColumn("v")).ValueOrDie(), expected);
}

TEST(PaxPage, NonConformingRecordsSpill) {
  PaxPageBuilder b({{"id", AdmTag::kBigInt}});
  ASSERT_TRUE(b.Add(R(R"({"id": 1})")).ok());
  // Extra field -> spill; type mismatch -> spill.
  ASSERT_TRUE(b.Add(R(R"({"id": 2, "nested": {"x": 1}})")).ok());
  ASSERT_TRUE(b.Add(R(R"({"id": "three"})")).ok());
  EXPECT_EQ(b.spilled_count(), 2u);
  Buffer page;
  b.Finish(&page);
  PaxPageView view(page.data(), page.size());
  ASSERT_TRUE(view.Validate().ok());
  int id = view.FindColumn("id");
  EXPECT_EQ(view.Get(id, 0).ValueOrDie().int_value(), 1);
  EXPECT_EQ(view.Get(id, 1).ValueOrDie().tag(), AdmTag::kMissing);
  auto spilled = view.SpilledRows().ValueOrDie();
  ASSERT_EQ(spilled.size(), 2u);
  EXPECT_EQ(spilled[0].first, 1u);
  EXPECT_EQ(spilled[1].first, 2u);
  AdmValue back = R(spilled[0].second);
  EXPECT_EQ(PrintAdm(back),
            PrintAdm(R(R"({"id": 2, "nested": {"x": 1}})")));
}

TEST(PaxPage, MixedTypesAcrossColumns) {
  PaxPageBuilder b({{"flag", AdmTag::kBoolean},
                    {"when", AdmTag::kDate},
                    {"where", AdmTag::kPoint},
                    {"small", AdmTag::kSmallInt}});
  AdmValue rec = AdmValue::Object();
  rec.AddField("flag", AdmValue::Boolean(true));
  rec.AddField("when", AdmValue::Date(17000));
  rec.AddField("where", AdmValue::Point(1.5, -2.5));
  rec.AddField("small", AdmValue::SmallInt(-7));
  ASSERT_TRUE(b.Add(rec).ok());
  Buffer page;
  b.Finish(&page);
  PaxPageView view(page.data(), page.size());
  EXPECT_TRUE(view.Get(view.FindColumn("flag"), 0).ValueOrDie().bool_value());
  EXPECT_EQ(view.Get(view.FindColumn("when"), 0).ValueOrDie().int_value(), 17000);
  EXPECT_DOUBLE_EQ(view.Get(view.FindColumn("where"), 0).ValueOrDie().point_y(),
                   -2.5);
  EXPECT_EQ(view.Get(view.FindColumn("small"), 0).ValueOrDie().int_value(), -7);
}

TEST(PaxPage, ValidateRejectsCorruption) {
  PaxPageBuilder b({{"id", AdmTag::kBigInt}});
  ASSERT_TRUE(b.Add(R(R"({"id": 1})")).ok());
  Buffer page;
  b.Finish(&page);
  Buffer bad = page;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(PaxPageView(bad.data(), bad.size()).Validate().ok());
  EXPECT_FALSE(PaxPageView(page.data(), 6).Validate().ok());
}

TEST(PaxPage, PropertyRandomScalarRecords) {
  Rng rng(404);
  std::vector<std::pair<std::string, AdmTag>> cols = {
      {"a", AdmTag::kBigInt}, {"b", AdmTag::kDouble}, {"c", AdmTag::kString}};
  PaxPageBuilder b(cols);
  std::vector<AdmValue> records;
  for (int i = 0; i < 500; ++i) {
    AdmValue rec = AdmValue::Object();
    if (rng.Bernoulli(0.9)) rec.AddField("a", AdmValue::BigInt(rng.Range(-100, 100)));
    if (rng.Bernoulli(0.7)) rec.AddField("b", AdmValue::Double(rng.NextDouble()));
    if (rng.Bernoulli(0.5)) {
      rec.AddField("c", AdmValue::String(rng.AlphaString(rng.Uniform(12))));
    }
    records.push_back(rec);
    ASSERT_TRUE(b.Add(rec).ok());
  }
  Buffer page;
  b.Finish(&page);
  PaxPageView view(page.data(), page.size());
  ASSERT_TRUE(view.Validate().ok());
  for (uint32_t r = 0; r < records.size(); ++r) {
    for (const auto& [name, tag] : cols) {
      const AdmValue* expected = records[r].FindField(name);
      AdmValue got = view.Get(view.FindColumn(name), r).ValueOrDie();
      if (expected == nullptr) {
        EXPECT_EQ(got.tag(), AdmTag::kMissing) << r << " " << name;
      } else {
        EXPECT_EQ(PrintAdm(got), PrintAdm(*expected)) << r << " " << name;
      }
    }
  }
}

}  // namespace
}  // namespace tc
