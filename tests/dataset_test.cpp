#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "adm/parser.h"
#include "adm/printer.h"
#include "core/ingest.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace tc {
namespace {

using testutil::DatasetFixture;
using testutil::SmallOptions;

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }

class DatasetModes : public ::testing::TestWithParam<SchemaMode> {};

TEST_P(DatasetModes, InsertGetFlushGet) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(GetParam()), 2).ok());
  AdmValue rec = R(R"({"id": 11, "name": "Kim", "age": 26})");
  ASSERT_TRUE(fx.dataset->Insert(rec).ok());
  auto got = fx.dataset->Get(11).ValueOrDie();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(PrintAdm(*got), PrintAdm(rec));
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  got = fx.dataset->Get(11).ValueOrDie();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(PrintAdm(*got), PrintAdm(rec));
  EXPECT_FALSE(fx.dataset->Get(999).ValueOrDie().has_value());
}

TEST_P(DatasetModes, UpsertAndDeleteAcrossFlushes) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(GetParam()), 2).ok());
  ASSERT_TRUE(fx.dataset->Insert(R(R"({"id": 1, "v": "first"})")).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  ASSERT_TRUE(fx.dataset->Upsert(R(R"({"id": 1, "v": "second", "extra": 2})")).ok());
  auto got = fx.dataset->Get(1).ValueOrDie();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->FindField("v")->string_value(), "second");
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  ASSERT_TRUE(fx.dataset->Delete(1).ok());
  EXPECT_FALSE(fx.dataset->Get(1).ValueOrDie().has_value());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  EXPECT_FALSE(fx.dataset->Get(1).ValueOrDie().has_value());
}

TEST_P(DatasetModes, WorkloadRoundTripThroughFlushes) {
  // Every workload record survives encode -> flush (-> compact) -> decode in
  // every storage mode.
  DatasetFixture fx;
  DatasetOptions o = SmallOptions(GetParam(), /*memtable_kb=*/256);
  auto gen = MakeTwitterGenerator(3);
  if (GetParam() == SchemaMode::kClosed) o.type = gen->ClosedType();
  ASSERT_TRUE(fx.Open(std::move(o), 2).ok());
  std::vector<AdmValue> records;
  for (int i = 0; i < 60; ++i) {
    records.push_back(gen->NextRecord());
    ASSERT_TRUE(fx.dataset->Insert(records.back()).ok()) << i;
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  for (const auto& rec : records) {
    int64_t pk = rec.FindField("id")->int_value();
    auto got = fx.dataset->Get(pk).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << pk;
    if (GetParam() == SchemaMode::kClosed) {
      // Closed decode reorders fields to declared order; compare field sets.
      EXPECT_EQ(got->field_count(), rec.field_count()) << pk;
      for (size_t f = 0; f < rec.field_count(); ++f) {
        const AdmValue* v = got->FindField(rec.field_name(f));
        ASSERT_NE(v, nullptr) << rec.field_name(f);
        EXPECT_EQ(PrintAdm(*v), PrintAdm(rec.field_value(f)));
      }
    } else if (GetParam() == SchemaMode::kBson) {
      // BSON is lossy on exotic types; spot-check core fields.
      EXPECT_EQ(got->FindField("text")->string_value(),
                rec.FindField("text")->string_value());
    } else {
      EXPECT_EQ(PrintAdm(*got), PrintAdm(rec)) << pk;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DatasetModes,
    ::testing::Values(SchemaMode::kOpen, SchemaMode::kClosed,
                      SchemaMode::kInferred, SchemaMode::kSchemalessVB,
                      SchemaMode::kBson),
    [](const auto& info) {
      std::string name = SchemaModeName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Dataset, InferredIsSmallestOnDisk) {
  // The Figure 16 ordering at miniature scale: inferred < closed < open.
  auto gen_seed = 77;
  uint64_t sizes[3];
  SchemaMode modes[3] = {SchemaMode::kOpen, SchemaMode::kClosed,
                         SchemaMode::kInferred};
  for (int m = 0; m < 3; ++m) {
    DatasetFixture fx;
    DatasetOptions o = SmallOptions(modes[m], 512);
    auto gen = MakeSensorsGenerator(gen_seed);
    if (modes[m] == SchemaMode::kClosed) o.type = gen->ClosedType();
    ASSERT_TRUE(fx.Open(std::move(o), 1).ok());
    for (int i = 0; i < 40; ++i) ASSERT_TRUE(fx.dataset->Insert(gen->NextRecord()).ok());
    ASSERT_TRUE(fx.dataset->FlushAll().ok());
    sizes[m] = fx.dataset->TotalPhysicalBytes();
  }
  EXPECT_LT(sizes[2], sizes[1]);  // inferred < closed
  EXPECT_LT(sizes[1], sizes[0]);  // closed < open
}

TEST(Dataset, CompressionShrinksFootprint) {
  uint64_t raw = 0, compressed = 0;
  for (bool comp : {false, true}) {
    DatasetFixture fx;
    DatasetOptions o = SmallOptions(SchemaMode::kOpen, 512);
    o.compression = comp;
    ASSERT_TRUE(fx.Open(std::move(o), 1).ok());
    auto gen = MakeTwitterGenerator(5);
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(fx.dataset->Insert(gen->NextRecord()).ok());
    ASSERT_TRUE(fx.dataset->FlushAll().ok());
    (comp ? compressed : raw) = fx.dataset->TotalPhysicalBytes();
  }
  EXPECT_LT(compressed, raw);
}

TEST(Dataset, PartitionSchemasEvolveIndependently) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred), 4).ok());
  // Craft records landing in specific partitions with disjoint field names.
  int placed = 0;
  for (int64_t pk = 0; placed < 8; ++pk) {
    size_t p = fx.dataset->PartitionOf(pk);
    AdmValue rec = AdmValue::Object();
    rec.AddField("id", AdmValue::BigInt(pk));
    rec.AddField("only_p" + std::to_string(p), AdmValue::BigInt(1));
    ASSERT_TRUE(fx.dataset->Insert(rec).ok());
    ++placed;
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  // Each partition's schema contains only its own field names (§3.4.1).
  for (size_t p = 0; p < 4; ++p) {
    Schema s = fx.dataset->partition(p)->SchemaSnapshot();
    for (size_t q = 0; q < 4; ++q) {
      uint32_t id = s.dict().Lookup("only_p" + std::to_string(q));
      if (q == p) continue;  // own field may or may not exist (hash spread)
      EXPECT_EQ(id, FieldNameDictionary::kInvalidId)
          << "partition " << p << " leaked field of partition " << q;
    }
  }
}

TEST(Dataset, RecoveryRestoresSchemaAndData) {
  DatasetFixture fx;
  DatasetOptions o = SmallOptions(SchemaMode::kInferred);
  o.wal_sync_every = 1;
  // One partition so the int-typed and string-typed "a" meet in one schema.
  ASSERT_TRUE(fx.Open(o, 1).ok());
  ASSERT_TRUE(fx.dataset->Insert(R(R"({"id": 1, "a": 5, "b": "x"})")).ok());
  ASSERT_TRUE(fx.dataset->Insert(R(R"({"id": 2, "a": "str"})")).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  ASSERT_TRUE(fx.dataset->Insert(R(R"({"id": 3, "c": true})")).ok());
  // "Crash" (no flush of record 3; it is in the WAL) and restart.
  ASSERT_TRUE(fx.Reopen(o, 1).ok());
  for (int64_t pk : {1, 2, 3}) {
    EXPECT_TRUE(fx.dataset->Get(pk).ValueOrDie().has_value()) << pk;
  }
  // Schema survived recovery: the union on "a" is still known (§3.1.2).
  std::string s = fx.dataset->partition(0)->SchemaSnapshot().ToString();
  EXPECT_NE(s.find("union"), std::string::npos) << s;
}

TEST(Dataset, BulkLoadProducesOneComponentPerPartition) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred), 2).ok());
  auto gen = MakeWosGenerator(9);
  std::vector<AdmValue> records;
  for (int i = 0; i < 30; ++i) records.push_back(gen->NextRecord());
  ASSERT_TRUE(fx.dataset->BulkLoad(records).ok());
  for (size_t p = 0; p < 2; ++p) {
    EXPECT_LE(fx.dataset->partition(p)->primary()->component_count(), 1u);
  }
  for (const auto& rec : records) {
    int64_t pk = rec.FindField("id")->int_value();
    auto got = fx.dataset->Get(pk).ValueOrDie();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(PrintAdm(*got), PrintAdm(rec));
  }
}

TEST(Dataset, PrimaryKeyIndexReducesLookups) {
  // Upserting fresh keys with a PK index skips old-version point lookups
  // (paper §3.2.2 / Figure 17b setup).
  uint64_t with_index, without_index;
  for (bool use_pk : {false, true}) {
    DatasetFixture fx;
    DatasetOptions o = SmallOptions(SchemaMode::kInferred, 64);
    o.primary_key_index = use_pk;
    ASSERT_TRUE(fx.Open(std::move(o), 1).ok());
    auto gen = MakeTwitterGenerator(13);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(fx.dataset->Upsert(gen->NextRecord()).ok());
    }
    (use_pk ? with_index : without_index) =
        fx.dataset->AggregateStats().old_version_lookups;
  }
  EXPECT_LT(with_index, without_index);
}

// Restores an env var on scope exit even when an ASSERT_* returns early —
// a leaked TC_MERGE_POLICY would silently re-policy every later test, since
// DatasetOptions reads the environment in its default member initializer.
struct ScopedEnv {
  const char* name;
  ScopedEnv(const char* n, const char* value) : name(n) {
    ::setenv(n, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name); }
};

TEST(Dataset, MergePolicySelectedByEnvEndToEnd) {
  // TC_MERGE_POLICY must reach every LSM tree of a partition: the primary,
  // the primary-key index, and the secondary-index tree.
  {
    ScopedEnv env("TC_MERGE_POLICY", "tiered");
    DatasetFixture fx;
    DatasetOptions o;  // default options re-read the environment
    o.memtable_budget_bytes = 64 * 1024;
    o.wal_sync_every = 0;
    o.primary_key_index = true;
    o.secondary_index_field = "score";
    ASSERT_TRUE(fx.Open(std::move(o), 1).ok());
    DatasetPartition* part = fx.dataset->partition(0);
    EXPECT_STREQ(part->primary()->merge_policy_name(), "tiered");
    EXPECT_STREQ(part->pk_index()->merge_policy_name(), "tiered");
    EXPECT_STREQ(part->secondary()->tree()->merge_policy_name(), "tiered");
    ASSERT_TRUE(fx.dataset->Insert(R(R"({"id": 1, "score": 10})")).ok());
    ASSERT_TRUE(fx.dataset->FlushAll().ok());
    EXPECT_EQ(fx.dataset->SecondaryRangeScan(0, 20).ValueOrDie(),
              (std::vector<int64_t>{1}));
  }
  {
    DatasetFixture fx;
    ASSERT_TRUE(fx.Open(DatasetOptions{}, 1).ok());
    EXPECT_STREQ(fx.dataset->partition(0)->primary()->merge_policy_name(),
                 "prefix");
  }
}

TEST(Dataset, MissingPrimaryKeyRejected) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred), 1).ok());
  EXPECT_FALSE(fx.dataset->Insert(R(R"({"name": "nopk"})")).ok());
  EXPECT_FALSE(fx.dataset->InsertJson(R"({"id": "not-an-int"})").ok());
  EXPECT_TRUE(fx.dataset->InsertJson(R"({"id": 5, "ok": true})").ok());
}

TEST(Dataset, InsertBatchAppliesHealthyRecordsAndReportsBad) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred), 2).ok());
  std::vector<AdmValue> batch = {
      R(R"({"id": 1, "v": "a"})"),
      R(R"({"name": "nopk"})"),  // index 1: no primary key
      R(R"({"id": 3, "v": "c"})"),
      R(R"({"id": 4, "v": "d"})"),
  };
  BatchErrors errors;
  Status st = fx.dataset->InsertBatch(batch, &errors);
  EXPECT_FALSE(st.ok());  // first error doubles as the return status
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].first, 1u);  // attributed to the bad record's offset
  EXPECT_FALSE(errors[0].second.ok());
  // The healthy records landed despite the bad one.
  for (int64_t pk : {1, 3, 4}) {
    EXPECT_TRUE(fx.dataset->Get(pk).ValueOrDie().has_value()) << pk;
  }
}

TEST(Dataset, InsertBatchSurvivesFlushAndPartitioning) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred, /*memtable_kb=*/16), 3).ok());
  std::vector<AdmValue> batch;
  for (int64_t k = 0; k < 300; ++k) {
    batch.push_back(R(R"({"id": )" + std::to_string(k) + R"(, "v": "payload-)" +
                      std::to_string(k) + R"("})"));
  }
  ASSERT_TRUE(fx.dataset->InsertBatch(batch).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  for (int64_t k = 0; k < 300; ++k) {
    auto got = fx.dataset->Get(k).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(got->FindField("v")->string_value(),
              "payload-" + std::to_string(k));
  }
}

TEST(Dataset, UpsertBatchOverwritesAndInsertsAcrossPartitions) {
  DatasetFixture fx;
  DatasetOptions o = SmallOptions(SchemaMode::kInferred, /*memtable_kb=*/16);
  o.primary_key_index = true;  // exercise the pk-index leg of the batch path
  ASSERT_TRUE(fx.Open(std::move(o), 3).ok());
  std::vector<AdmValue> batch;
  for (int64_t k = 0; k < 100; ++k) {
    batch.push_back(R(R"({"id": )" + std::to_string(k) + R"(, "v": "old"})"));
  }
  ASSERT_TRUE(fx.dataset->InsertBatch(batch).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  // 0-99 overwrite, 100-149 are fresh inserts through the same batch.
  batch.clear();
  for (int64_t k = 0; k < 150; ++k) {
    batch.push_back(R(R"({"id": )" + std::to_string(k) + R"(, "v": "new"})"));
  }
  ASSERT_TRUE(fx.dataset->UpsertBatch(batch).ok());
  for (int64_t k = 0; k < 150; ++k) {
    auto got = fx.dataset->Get(k).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(got->FindField("v")->string_value(), "new") << k;
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  for (int64_t k = 0; k < 150; ++k) {
    ASSERT_TRUE(fx.dataset->Get(k).ValueOrDie().has_value()) << k;
  }
}

TEST(Dataset, UpsertBatchReportsBadRecordsAndAppliesRest) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred), 2).ok());
  ASSERT_TRUE(fx.dataset->Insert(R(R"({"id": 1, "v": "a"})")).ok());
  std::vector<AdmValue> batch = {
      R(R"({"id": 1, "v": "b"})"),
      R(R"({"name": "nopk"})"),  // index 1: no primary key
      R(R"({"id": 2, "v": "c"})"),
  };
  BatchErrors errors;
  EXPECT_FALSE(fx.dataset->UpsertBatch(batch, &errors).ok());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].first, 1u);
  EXPECT_EQ(fx.dataset->Get(1).ValueOrDie()->FindField("v")->string_value(), "b");
  EXPECT_TRUE(fx.dataset->Get(2).ValueOrDie().has_value());
}

TEST(Dataset, UpsertBatchMovesSecondaryIndexEntries) {
  DatasetFixture fx;
  DatasetOptions o = SmallOptions(SchemaMode::kInferred);
  o.secondary_index_field = "ts";
  ASSERT_TRUE(fx.Open(std::move(o), 2).ok());
  std::vector<AdmValue> batch;
  for (int64_t k = 0; k < 20; ++k) {
    batch.push_back(R(R"({"id": )" + std::to_string(k) + R"(, "ts": )" +
                      std::to_string(100 + k) + "}"));
  }
  ASSERT_TRUE(fx.dataset->InsertBatch(batch).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  batch.clear();
  for (int64_t k = 0; k < 20; ++k) {
    batch.push_back(R(R"({"id": )" + std::to_string(k) + R"(, "ts": )" +
                      std::to_string(900 + k) + "}"));
  }
  ASSERT_TRUE(fx.dataset->UpsertBatch(batch).ok());
  // Every entry moved: the old key range is empty, the new one is full.
  EXPECT_TRUE(fx.dataset->SecondaryRangeScan(100, 119).ValueOrDie().empty());
  EXPECT_EQ(fx.dataset->SecondaryRangeScan(900, 919).ValueOrDie().size(), 20u);
}

TEST(Dataset, DeleteBatchRemovesRecordsAndIndexEntries) {
  DatasetFixture fx;
  DatasetOptions o = SmallOptions(SchemaMode::kInferred);
  o.secondary_index_field = "ts";
  o.primary_key_index = true;
  ASSERT_TRUE(fx.Open(std::move(o), 3).ok());
  std::vector<AdmValue> batch;
  for (int64_t k = 0; k < 30; ++k) {
    batch.push_back(R(R"({"id": )" + std::to_string(k) + R"(, "ts": )" +
                      std::to_string(100 + k) + "}"));
  }
  ASSERT_TRUE(fx.dataset->InsertBatch(batch).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  std::vector<int64_t> evens;
  for (int64_t k = 0; k < 30; k += 2) evens.push_back(k);
  ASSERT_TRUE(fx.dataset->DeleteBatch(evens).ok());
  for (int64_t k = 0; k < 30; ++k) {
    EXPECT_EQ(fx.dataset->Get(k).ValueOrDie().has_value(), k % 2 == 1) << k;
  }
  auto pks = fx.dataset->SecondaryRangeScan(100, 129).ValueOrDie();
  ASSERT_EQ(pks.size(), 15u);  // only the odd keys' entries survive
  for (int64_t pk : pks) EXPECT_EQ(pk % 2, 1) << pk;
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  for (int64_t k = 0; k < 30; k += 2) {
    EXPECT_FALSE(fx.dataset->Get(k).ValueOrDie().has_value()) << k;
  }
}

/// Filesystem wrapper that (once armed) fails component creation for the
/// pk-index tree only — forces a batch-level pk-index failure while the
/// primary keeps working.
class PkIndexFailFs final : public FileSystem {
 public:
  explicit PkIndexFailFs(std::shared_ptr<FileSystem> inner)
      : inner_(std::move(inner)) {}

  std::atomic<bool> fail_pkidx{false};

  Result<std::unique_ptr<File>> Open(const std::string& path) override {
    return inner_->Open(path);
  }
  Result<std::unique_ptr<File>> Create(const std::string& path) override {
    if (fail_pkidx.load() && path.find(".pkidx") != std::string::npos) {
      return Status::IOError("injected pk-index create failure: " + path);
    }
    return inner_->Create(path);
  }
  Status Delete(const std::string& path) override { return inner_->Delete(path); }
  bool Exists(const std::string& path) const override {
    return inner_->Exists(path);
  }
  Result<std::vector<std::string>> List(const std::string& dir,
                                        const std::string& prefix) const override {
    return inner_->List(dir, prefix);
  }
  Status CreateDir(const std::string& path) override {
    return inner_->CreateDir(path);
  }
  Result<uint64_t> FileSize(const std::string& path) const override {
    return inner_->FileSize(path);
  }

 private:
  std::shared_ptr<FileSystem> inner_;
};

std::vector<AdmValue> SequentialBatch(int64_t base, size_t n) {
  std::vector<AdmValue> batch;
  batch.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    batch.push_back(R(R"({"id": )" + std::to_string(base + static_cast<int64_t>(k)) +
                      R"(, "v": "x"})"));
  }
  return batch;
}

// Regression: a pk-index batch failure (here: its memtable flush cannot build
// a component) must mark EVERY record of the batch failed, exactly like a
// primary-tree batch failure — not return a bare status with `errors` empty.
TEST(Dataset, InsertBatchPkIndexFailureMarksEveryRecord) {
  DatasetFixture fx;
  auto fail_fs = std::make_shared<PkIndexFailFs>(fx.fs);
  fx.fs = fail_fs;
  DatasetOptions o = SmallOptions(SchemaMode::kOpen, /*memtable_kb=*/1024);
  o.primary_key_index = true;
  ASSERT_TRUE(fx.Open(std::move(o), 1).ok());
  fail_fs->fail_pkidx = true;
  constexpr size_t kBatch = 256;
  bool failed = false;
  // The pk-index memtable budget is 64 KiB (~1024 entries): a few batches in,
  // its inline flush hits the injected failure.
  for (int64_t base = 0; base < 4096 && !failed; base += kBatch) {
    std::vector<AdmValue> batch = SequentialBatch(base, kBatch);
    BatchErrors errors;
    Status st = fx.dataset->InsertBatch(batch, &errors);
    if (st.ok()) {
      EXPECT_TRUE(errors.empty());
      continue;
    }
    failed = true;
    // Batch-level failure: every record attributed, each with the failure.
    ASSERT_EQ(errors.size(), kBatch);
    for (const auto& [idx, rec_st] : errors) {
      EXPECT_LT(idx, kBatch);
      EXPECT_FALSE(rec_st.ok());
    }
  }
  EXPECT_TRUE(failed) << "pk-index flush failure never surfaced";
}

// Regression: the same failure through the async front end must fail the
// ticket (Wait + per-record errors) AND latch the batch-level sticky error
// that Drain() reports — it is not a per-record rejection.
TEST(Dataset, IngestFrontEndSurfacesPkIndexBatchFailure) {
  DatasetFixture fx;
  auto fail_fs = std::make_shared<PkIndexFailFs>(fx.fs);
  fx.fs = fail_fs;
  DatasetOptions o = SmallOptions(SchemaMode::kOpen, /*memtable_kb=*/1024);
  o.primary_key_index = true;
  ASSERT_TRUE(fx.Open(std::move(o), 1).ok());
  fail_fs->fail_pkidx = true;
  GroupCommitConfig gc;
  gc.max_records = 256;
  gc.max_usecs = 1000;
  IngestFrontEnd front_end(fx.dataset.get(), gc, /*queue_capacity=*/2);
  constexpr size_t kBatch = 256;
  bool failed = false;
  for (int64_t base = 0; base < 4096 && !failed; base += kBatch) {
    IngestTicket ticket = front_end.Submit(SequentialBatch(base, kBatch));
    Status st = ticket.Wait();
    if (st.ok()) continue;
    failed = true;
    auto errors = ticket.errors();
    ASSERT_EQ(errors.size(), kBatch);
    for (const auto& [idx, rec_st] : errors) {
      EXPECT_LT(idx, kBatch);
      EXPECT_FALSE(rec_st.ok());
    }
  }
  ASSERT_TRUE(failed) << "pk-index flush failure never surfaced";
  EXPECT_FALSE(front_end.Drain().ok());  // batch-level failures latch
}

// A feed interleaving inserts, upserts, and deletes through one front end:
// groups never mix operations and per-partition submission order is
// preserved, so the final state is exactly what the sequential ops dictate.
TEST(Dataset, IngestFrontEndMixedOperations) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred, 256), 2).ok());
  GroupCommitConfig gc;
  gc.max_records = 64;  // small groups: op boundaries + caps both close groups
  gc.max_usecs = 500;
  IngestFrontEnd fe(fx.dataset.get(), gc, /*queue_capacity=*/4);

  auto rec = [](int64_t id, int v) {
    return R(R"({"id": )" + std::to_string(id) + R"(, "v": )" +
             std::to_string(v) + "}");
  };
  std::vector<AdmValue> inserts;
  for (int64_t id = 0; id < 100; ++id) inserts.push_back(rec(id, 1));
  std::vector<AdmValue> upserts;
  for (int64_t id = 50; id < 150; ++id) upserts.push_back(rec(id, 2));
  std::vector<AdmValue> deletes;  // pk only: kDelete encodes no payload
  for (int64_t id = 0; id < 25; ++id) {
    deletes.push_back(R(R"({"id": )" + std::to_string(id) + "}"));
  }
  IngestTicket t1 = fe.Submit(std::move(inserts), IngestOp::kInsert);
  IngestTicket t2 = fe.Submit(std::move(upserts), IngestOp::kUpsert);
  IngestTicket t3 = fe.Submit(std::move(deletes), IngestOp::kDelete);
  EXPECT_TRUE(t1.Wait().ok());
  EXPECT_TRUE(t2.Wait().ok());
  EXPECT_TRUE(t3.Wait().ok());
  ASSERT_TRUE(fe.Drain().ok());

  for (int64_t id = 0; id < 150; ++id) {
    auto got = fx.dataset->Get(id);
    ASSERT_TRUE(got.ok()) << "id " << id;
    if (id < 25) {
      EXPECT_FALSE(got.value().has_value()) << "id " << id << " not deleted";
      continue;
    }
    ASSERT_TRUE(got.value().has_value()) << "id " << id;
    const AdmValue* v = got.value()->FindField("v");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->int_value(), id < 50 ? 1 : 2) << "id " << id;
  }
}

TEST(Dataset, InsertJsonBatchOffsetLocatesBadRecord) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred), 1).ok());
  Status st = fx.dataset->InsertJson(R"({"name": "nopk"})", /*batch_offset=*/4217);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message().find("record 4217: "), 0u) << st.message();
  // Without an offset the message stays unprefixed.
  Status bare = fx.dataset->InsertJson(R"({"name": "nopk"})");
  ASSERT_FALSE(bare.ok());
  EXPECT_EQ(bare.message().find("record 4217"), std::string::npos) << bare.message();
}

}  // namespace
}  // namespace tc
