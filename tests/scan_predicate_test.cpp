#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "adm/printer.h"
#include "query/paper_queries.h"
#include "query/scan_predicate.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace tc {
namespace {

using testutil::DatasetFixture;
using testutil::SmallOptions;

// ---------------------------------------------------------------------------
// Scalar comparison semantics (the contract both evaluation paths share).
// ---------------------------------------------------------------------------

TEST(AdmScalarSatisfies, UnknownCollapsesToFalseForEveryOp) {
  const AdmValue lit = AdmValue::BigInt(5);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(AdmScalarSatisfies(AdmValue::Missing(), op, lit));
    EXPECT_FALSE(AdmScalarSatisfies(AdmValue::Null(), op, lit));
    EXPECT_FALSE(AdmScalarSatisfies(AdmValue::Object(), op, lit));
    EXPECT_FALSE(AdmScalarSatisfies(AdmValue::String("5"), op, lit));  // family
    EXPECT_FALSE(AdmScalarSatisfies(AdmValue::BigInt(5), op, AdmValue::Null()));
  }
}

TEST(AdmScalarSatisfies, NumericFamilies) {
  EXPECT_TRUE(AdmScalarSatisfies(AdmValue::Int(3), CompareOp::kLt,
                                 AdmValue::BigInt(4)));
  EXPECT_TRUE(AdmScalarSatisfies(AdmValue::TinyInt(-2), CompareOp::kGe,
                                 AdmValue::Double(-2.0)));
  EXPECT_TRUE(AdmScalarSatisfies(AdmValue::Double(2.5), CompareOp::kGt,
                                 AdmValue::SmallInt(2)));
  // Int-family pairs compare exactly as int64 (no double rounding).
  int64_t big = (1ll << 53) + 1;
  EXPECT_TRUE(AdmScalarSatisfies(AdmValue::BigInt(big), CompareOp::kNe,
                                 AdmValue::BigInt(big - 1)));
  EXPECT_TRUE(AdmScalarSatisfies(AdmValue::DateTime(100), CompareOp::kEq,
                                 AdmValue::BigInt(100)));
}

TEST(AdmScalarSatisfies, StringsAndBooleans) {
  EXPECT_TRUE(AdmScalarSatisfies(AdmValue::String("abc"), CompareOp::kLt,
                                 AdmValue::String("abd")));
  EXPECT_TRUE(AdmScalarSatisfies(AdmValue::String("JoBs"), CompareOp::kEq,
                                 AdmValue::String("jobs"), /*fold_case=*/true));
  EXPECT_FALSE(AdmScalarSatisfies(AdmValue::String("JoBs"), CompareOp::kEq,
                                  AdmValue::String("jobs")));
  EXPECT_TRUE(AdmScalarSatisfies(AdmValue::Boolean(true), CompareOp::kNe,
                                 AdmValue::Boolean(false)));
  // Booleans have no ordering.
  EXPECT_FALSE(AdmScalarSatisfies(AdmValue::Boolean(false), CompareOp::kLt,
                                  AdmValue::Boolean(true)));
}

// ---------------------------------------------------------------------------
// Packed kernels == decoded semantics, per tag and operator.
// ---------------------------------------------------------------------------

TEST(TermScalarSatisfies, InListIsAnyLiteralDisjunction) {
  PredicateTerm in = ScanPredicate::In(
      "x", {AdmValue::BigInt(3), AdmValue::BigInt(7), AdmValue::String("a")});
  EXPECT_TRUE(TermScalarSatisfies(AdmValue::BigInt(3), in));
  EXPECT_TRUE(TermScalarSatisfies(AdmValue::BigInt(7), in));
  EXPECT_TRUE(TermScalarSatisfies(AdmValue::String("a"), in));
  EXPECT_FALSE(TermScalarSatisfies(AdmValue::BigInt(4), in));
  // Cross-family comparisons never satisfy, as for plain terms.
  EXPECT_FALSE(TermScalarSatisfies(AdmValue::String("3"), in));
  EXPECT_FALSE(TermScalarSatisfies(AdmValue::Null(), in));

  // Non-kEq ops give "matches any bound" semantics.
  PredicateTerm lt_any = ScanPredicate::In(
      "x", {AdmValue::BigInt(5), AdmValue::BigInt(10)});
  lt_any.op = CompareOp::kLt;
  EXPECT_TRUE(TermScalarSatisfies(AdmValue::BigInt(7), lt_any));   // < 10
  EXPECT_FALSE(TermScalarSatisfies(AdmValue::BigInt(12), lt_any));

  // Case folding applies per listed literal.
  PredicateTerm folded = ScanPredicate::In(
      "x", {AdmValue::String("ABC")}, /*fold_case=*/true);
  EXPECT_TRUE(TermScalarSatisfies(AdmValue::String("abc"), folded));
  EXPECT_FALSE(TermScalarSatisfies(AdmValue::String("abd"), folded));
}

TEST(PackedKernels, LeafCompareMatchesDecodedCompare) {
  Rng rng(7);
  DatasetType type = DatasetType::OpenWithPk("id");
  for (int round = 0; round < 200; ++round) {
    AdmValue rec = AdmValue::Object();
    rec.AddField("id", AdmValue::BigInt(round));
    rec.AddField("v", testutil::RandomScalar(&rng));
    Buffer buf;
    ASSERT_TRUE(EncodeVectorRecord(rec, type, &buf).ok());
    VectorRecordView view(buf.data(), buf.size());
    VectorRecordWalker walker(view);
    VectorRecordWalker::Item it;
    bool done = false;
    while (true) {
      ASSERT_TRUE(walker.Next(&it, &done).ok());
      if (done) break;
      if (IsNested(it.tag) || it.tag == AdmTag::kEndNest) continue;
      AdmValue decoded = DecodeVectorScalarItem(it);
      for (int l = 0; l < 6; ++l) {
        AdmValue lit = testutil::RandomScalar(&rng);
        for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
          EXPECT_EQ(PackedLeafSatisfies(it, op, lit),
                    AdmScalarSatisfies(decoded, op, lit))
              << AdmTagName(it.tag) << " " << CompareOpName(op) << " "
              << AdmTagName(lit.tag());
        }
      }
    }
  }
}

TEST(PackedKernels, FixedRunKernelMatchesPerItemCompare) {
  Rng rng(11);
  DatasetType type = DatasetType::OpenWithPk("id");
  for (int round = 0; round < 100; ++round) {
    // An array of same-typed fixed-width scalars — the vectorized-run shape.
    AdmValue arr = AdmValue::Array();
    size_t n = 1 + rng.Uniform(40);
    int kind = static_cast<int>(rng.Uniform(3));
    for (size_t i = 0; i < n; ++i) {
      if (kind == 0) arr.Append(AdmValue::BigInt(rng.Range(-50, 50)));
      if (kind == 1) arr.Append(AdmValue::Double(rng.NextDouble() * 100 - 50));
      if (kind == 2) arr.Append(AdmValue::Int(static_cast<int32_t>(rng.Range(-50, 50))));
    }
    AdmValue rec = AdmValue::Object();
    rec.AddField("id", AdmValue::BigInt(round));
    rec.AddField("vals", arr);
    Buffer buf;
    ASSERT_TRUE(EncodeVectorRecord(rec, type, &buf).ok());
    VectorRecordView view(buf.data(), buf.size());

    PredicateTerm term = ScanPredicate::Term(
        "vals[*]", static_cast<CompareOp>(rng.Uniform(6)),
        rng.Bernoulli(0.5) ? AdmValue::BigInt(rng.Range(-50, 50))
                           : AdmValue::Double(rng.NextDouble() * 100 - 50));
    ScanPredicate pred;
    pred.terms.push_back(term);
    auto got = MatchVectorRecord(view, type, nullptr, pred);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), EvalPredicateTerm(arr, term));
  }
}

TEST(PackedKernels, WalkerFixedRunOnlyInsideCollections) {
  DatasetType type = DatasetType::OpenWithPk("id");
  AdmValue rec = AdmValue::Object();
  rec.AddField("id", AdmValue::BigInt(1));
  AdmValue arr = AdmValue::Array();
  for (int i = 0; i < 5; ++i) arr.Append(AdmValue::Double(i));
  rec.AddField("vals", arr);
  Buffer buf;
  ASSERT_TRUE(EncodeVectorRecord(rec, type, &buf).ok());
  VectorRecordView view(buf.data(), buf.size());
  VectorRecordWalker walker(view);
  VectorRecordWalker::Item it;
  bool done = false;
  AdmTag run_tag;
  const uint8_t* base = nullptr;
  ASSERT_TRUE(walker.Next(&it, &done).ok());  // root object
  EXPECT_EQ(walker.TryFixedRun(&run_tag, &base), 0u);  // object scope: refuse
  ASSERT_TRUE(walker.Next(&it, &done).ok());  // id (named field)
  ASSERT_TRUE(walker.Next(&it, &done).ok());  // vals (enters array scope)
  ASSERT_EQ(it.tag, AdmTag::kArray);
  ASSERT_EQ(walker.TryFixedRun(&run_tag, &base), 5u);
  EXPECT_EQ(run_tag, AdmTag::kDouble);
  ASSERT_NE(base, nullptr);
  EXPECT_TRUE(AnyPackedFixedSatisfies(run_tag, base, 5, CompareOp::kEq,
                                      AdmValue::Double(3)));
  EXPECT_FALSE(AnyPackedFixedSatisfies(run_tag, base, 5, CompareOp::kGt,
                                       AdmValue::Double(4)));
  ASSERT_TRUE(walker.Next(&it, &done).ok());  // end-nest: run consumed cleanly
  EXPECT_EQ(it.tag, AdmTag::kEndNest);
  ASSERT_TRUE(walker.Next(&it, &done).ok());
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// Randomized equivalence: lowered scans == row-level FilterOperator, across
// storage modes, union-typed/missing/null leaves, and multi-component trees
// with deletes and shape-changing upserts.
// ---------------------------------------------------------------------------

AdmValue ChurnRecord(Rng* rng, int64_t id) {
  AdmValue r = AdmValue::Object();
  r.AddField("id", AdmValue::BigInt(id));
  // "a": union-typed leaf (bigint | string | double), sometimes null/absent.
  switch (rng->Uniform(5)) {
    case 0: break;  // absent -> missing on access
    case 1: r.AddField("a", AdmValue::Null()); break;
    case 2: r.AddField("a", AdmValue::BigInt(rng->Range(0, 40))); break;
    case 3: r.AddField("a", AdmValue::String(rng->AlphaString(3))); break;
    default: r.AddField("a", AdmValue::Double(rng->NextDouble() * 40)); break;
  }
  if (rng->Bernoulli(0.8)) r.AddField("b", AdmValue::Double(rng->NextDouble() * 10));
  if (rng->Bernoulli(0.7)) r.AddField("s", AdmValue::String(rng->AlphaString(4)));
  if (rng->Bernoulli(0.6)) {
    AdmValue n = AdmValue::Object();
    n.AddField("x", rng->Bernoulli(0.8) ? AdmValue::BigInt(rng->Range(0, 20))
                                        : AdmValue::String("x"));
    if (rng->Bernoulli(0.5)) n.AddField("y", AdmValue::String(rng->AlphaString(2)));
    r.AddField("n", std::move(n));
  }
  if (rng->Bernoulli(0.7)) {
    AdmValue vals = AdmValue::Array();  // scalar run for the vectorized kernel
    size_t c = rng->Uniform(12);
    for (size_t i = 0; i < c; ++i) {
      vals.Append(AdmValue::Double(rng->NextDouble() * 20));
    }
    r.AddField("vals", std::move(vals));
  }
  if (rng->Bernoulli(0.6)) {
    AdmValue tags = AdmValue::Array();  // array of objects for existential [*]
    size_t c = rng->Uniform(4);
    for (size_t i = 0; i < c; ++i) {
      AdmValue t = AdmValue::Object();
      t.AddField("t", AdmValue::String(rng->AlphaString(2)));
      if (rng->Bernoulli(0.5)) t.AddField("k", AdmValue::BigInt(rng->Range(0, 9)));
      tags.Append(std::move(t));
    }
    r.AddField("tags", std::move(tags));
  }
  return r;
}

std::shared_ptr<const ScanPredicate> RandomPredicate(Rng* rng) {
  auto pick_path = [&]() -> std::string {
    switch (rng->Uniform(8)) {
      case 0: return "a";
      case 1: return "b";
      case 2: return "s";
      case 3: return "n.x";
      case 4: return "vals[*]";
      case 5: return "tags[*].t";
      case 6: return "n";          // nested value: never satisfies
      default: return "zzz";       // never present: missing
    }
  };
  auto pick_literal = [&]() -> AdmValue {
    switch (rng->Uniform(5)) {
      case 0: return AdmValue::BigInt(rng->Range(0, 40));
      case 1: return AdmValue::Double(rng->NextDouble() * 40);
      case 2: return AdmValue::String(rng->AlphaString(rng->Bernoulli(0.5) ? 3 : 4));
      case 3: return AdmValue::String(rng->AlphaString(2));
      default: return AdmValue::Null();  // incomparable literal
    }
  };
  std::vector<PredicateTerm> terms;
  size_t n = 1 + rng->Uniform(2);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.25)) {
      // IN-list term (any-literal disjunction): mixed-type lists included —
      // non-matching families must fall out identically on both paths.
      std::vector<AdmValue> literals;
      size_t k = 1 + rng->Uniform(4);
      for (size_t j = 0; j < k; ++j) literals.push_back(pick_literal());
      terms.push_back(
          ScanPredicate::In(pick_path(), std::move(literals), rng->Bernoulli(0.2)));
      continue;
    }
    terms.push_back(ScanPredicate::Term(pick_path(),
                                        static_cast<CompareOp>(rng->Uniform(6)),
                                        pick_literal(), rng->Bernoulli(0.2)));
  }
  return ScanPredicate::And(std::move(terms));
}

struct ScanResult {
  std::vector<std::string> rows;  // rendered, later sorted
  QueryStats stats;
};

// Runs the scan over `fx` with the predicate either LOWERED into the scan or
// applied as a row-level FilterOperator above it.
ScanResult RunScan(DatasetFixture* fx, const QueryOptions& qo,
                   std::shared_ptr<const ScanPredicate> pred, bool lowered) {
  std::vector<FieldPath> paths = {FieldPath::Parse("id")};
  for (const auto& p : pred->Paths()) paths.push_back(p);
  ScanResult out;
  std::mutex mu;
  auto stats = RunPartitioned(
      fx->dataset.get(), qo,
      [&](const PartitionContext& ctx) -> Result<std::unique_ptr<Operator>> {
        ScanSpec spec;
        spec.paths = paths;
        if (lowered) spec.predicate = pred;
        auto scan = std::make_unique<ScanOperator>(ctx.partition, ctx.accessor,
                                                   std::move(spec), ctx.counters);
        if (lowered) return {std::move(scan)};
        return {std::make_unique<FilterOperator>(std::move(scan),
                                                 MakeRowPredicate(pred, 1))};
      },
      [&](int) -> RowSink {
        return [&](Row&& row) -> Status {
          std::string s;
          for (const auto& c : row.cols) {
            s += PrintAdm(c);
            s += "|";
          }
          std::lock_guard<std::mutex> lock(mu);
          out.rows.push_back(std::move(s));
          return Status::OK();
        };
      });
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (stats.ok()) out.stats = stats.value();
  std::sort(out.rows.begin(), out.rows.end());
  return out;
}

TEST(LoweredPredicateEquivalence, RandomizedAcrossModesAndChurn) {
  struct Config {
    SchemaMode mode;
    bool consolidate;
  };
  const Config configs[] = {
      {SchemaMode::kInferred, true},
      {SchemaMode::kInferred, false},
      {SchemaMode::kSchemalessVB, true},
      {SchemaMode::kOpen, true},
  };
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (const Config& cfg : configs) {
      Rng rng(seed * 7919);
      DatasetFixture fx;
      // Small memtable: the load below crosses several flushes, so scans merge
      // multiple on-disk components plus live memtable entries.
      ASSERT_TRUE(fx.Open(SmallOptions(cfg.mode, 16), 2).ok());
      int64_t next_id = 0;
      for (int i = 0; i < 120; ++i) {
        ASSERT_TRUE(fx.dataset->Insert(ChurnRecord(&rng, next_id++)).ok());
      }
      // Deletes leave anti-matter that must annihilate across components
      // before (not after) predicate evaluation.
      for (int i = 0; i < 25; ++i) {
        ASSERT_TRUE(fx.dataset->Delete(rng.Range(0, next_id - 1)).ok());
      }
      // Shape-changing upserts: union widening + anti-schema on the old shape.
      for (int i = 0; i < 25; ++i) {
        ASSERT_TRUE(
            fx.dataset->Upsert(ChurnRecord(&rng, rng.Range(0, next_id - 1))).ok());
      }
      for (int i = 0; i < 30; ++i) {
        ASSERT_TRUE(fx.dataset->Insert(ChurnRecord(&rng, next_id++)).ok());
      }
      ASSERT_TRUE(fx.dataset->FlushAll().ok());

      QueryOptions qo;
      qo.consolidate_field_access = cfg.consolidate;
      for (int p = 0; p < 12; ++p) {
        auto pred = RandomPredicate(&rng);
        ScanResult lowered = RunScan(&fx, qo, pred, /*lowered=*/true);
        ScanResult row_level = RunScan(&fx, qo, pred, /*lowered=*/false);
        EXPECT_EQ(lowered.rows, row_level.rows)
            << "mode=" << SchemaModeName(cfg.mode)
            << " consolidate=" << cfg.consolidate << " seed=" << seed
            << " pred#" << p;
        // Skipped rows are scanned-but-filtered, never dropped from stats.
        EXPECT_EQ(lowered.stats.rows_scanned, row_level.stats.rows_scanned);
        EXPECT_EQ(lowered.stats.bytes_scanned, row_level.stats.bytes_scanned);
        EXPECT_EQ(lowered.stats.rows_filtered_pre_assembly,
                  lowered.stats.rows_scanned - lowered.rows.size());
        EXPECT_EQ(row_level.stats.rows_filtered_pre_assembly, 0u);
      }
    }
  }
}

// The pre-assembly path must also hold for point-lookup sources (the
// secondary-index query path).
TEST(LoweredPredicateEquivalence, LookupOperatorHonorsPredicate) {
  Rng rng(99);
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred, 32), 1).ok());
  std::vector<int64_t> pks;
  for (int64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(fx.dataset->Insert(ChurnRecord(&rng, i)).ok());
    pks.push_back(i);
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  auto pred = ScanPredicate::And(
      {ScanPredicate::Term("a", CompareOp::kLe, AdmValue::BigInt(20))});
  std::vector<FieldPath> paths = {FieldPath::Parse("id"), FieldPath::Parse("a")};

  DatasetPartition* part = fx.dataset->partition(0);
  RecordAccessor accessor(SchemaMode::kInferred, &part->options().type,
                          part->SchemaSnapshot(), true);
  auto run = [&](bool lowered) {
    ScanCounters counters;
    ScanSpec spec;
    spec.paths = paths;
    if (lowered) spec.predicate = pred;
    std::unique_ptr<Operator> op = std::make_unique<LookupOperator>(
        part, &accessor, pks, std::move(spec), &counters);
    if (!lowered) {
      op = std::make_unique<FilterOperator>(std::move(op), MakeRowPredicate(pred, 1));
    }
    EXPECT_TRUE(op->Open().ok());
    std::vector<std::string> rows;
    Row row;
    while (true) {
      auto ok = op->Next(&row);
      EXPECT_TRUE(ok.ok());
      if (!ok.ok() || !ok.value()) break;
      rows.push_back(PrintAdm(row.cols[0]) + "|" + PrintAdm(row.cols[1]));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  auto lowered = run(true);
  auto row_level = run(false);
  EXPECT_EQ(lowered, row_level);
  EXPECT_FALSE(lowered.empty());
  EXPECT_LT(lowered.size(), pks.size());
}

// End-to-end: the deep-pushdown SensorsQ4 plan returns the same result as the
// row-level plan and reports the skipped rows in the new counter.
TEST(LoweredPredicateEquivalence, SensorsQ4DeepPushdownStats) {
  DatasetFixture fx;
  DatasetOptions o = SmallOptions(SchemaMode::kInferred, 256);
  ASSERT_TRUE(fx.Open(std::move(o), 2).ok());
  auto gen = MakeGenerator("sensors", 77);
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(fx.dataset->Insert(gen->NextRecord()).ok());
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());

  QueryOptions deep;
  QueryOptions shallow;
  shallow.pushdown_scan_predicates = false;
  auto with = RunPaperQuery("sensors", 4, fx.dataset.get(), deep);
  auto without = RunPaperQuery("sensors", 4, fx.dataset.get(), shallow);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with.value().summary, without.value().summary);
  EXPECT_EQ(with.value().stats.rows_scanned, 120u);
  EXPECT_EQ(without.value().stats.rows_scanned, 120u);
  EXPECT_GT(with.value().stats.rows_filtered_pre_assembly, 0u);
  EXPECT_EQ(without.value().stats.rows_filtered_pre_assembly, 0u);
}

}  // namespace
}  // namespace tc
