// Shared helpers for the test suite: random ADM value generation for property
// tests and an in-memory dataset fixture.
#ifndef TC_TESTS_TEST_UTIL_H_
#define TC_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "adm/value.h"
#include "common/rng.h"
#include "core/dataset.h"
#include "storage/buffer_cache.h"
#include "storage/file.h"

namespace tc {
namespace testutil {

/// Random scalar value drawn from the full set of ADM scalar types.
inline AdmValue RandomScalar(Rng* rng) {
  switch (rng->Uniform(12)) {
    case 0: return AdmValue::Null();
    case 1: return AdmValue::Boolean(rng->Bernoulli(0.5));
    case 2: return AdmValue::TinyInt(static_cast<int8_t>(rng->Range(-128, 127)));
    case 3: return AdmValue::SmallInt(static_cast<int16_t>(rng->Range(-32768, 32767)));
    case 4: return AdmValue::Int(static_cast<int32_t>(rng->Next()));
    case 5: return AdmValue::BigInt(static_cast<int64_t>(rng->Next()));
    case 6: return AdmValue::Double(rng->NextDouble() * 1e6 - 5e5);
    case 7: return AdmValue::String(rng->AlphaString(rng->Uniform(24)));
    case 8: return AdmValue::Date(static_cast<int32_t>(rng->Range(-10000, 20000)));
    case 9: return AdmValue::DateTime(static_cast<int64_t>(rng->Next() % (1ll << 41)));
    case 10: return AdmValue::Point(rng->NextDouble() * 360 - 180,
                                    rng->NextDouble() * 180 - 90);
    default: return AdmValue::Duration(static_cast<int64_t>(rng->Uniform(1u << 30)));
  }
}

/// Random nested value with bounded depth/size.
inline AdmValue RandomValue(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.55)) return RandomScalar(rng);
  switch (rng->Uniform(3)) {
    case 0: {
      AdmValue obj = AdmValue::Object();
      size_t n = rng->Uniform(5);
      for (size_t i = 0; i < n; ++i) {
        obj.AddField("f" + std::to_string(i) + "_" + rng->AlphaString(3),
                     RandomValue(rng, depth - 1));
      }
      return obj;
    }
    case 1: {
      AdmValue arr = AdmValue::Array();
      size_t n = rng->Uniform(5);
      for (size_t i = 0; i < n; ++i) arr.Append(RandomValue(rng, depth - 1));
      return arr;
    }
    default: {
      AdmValue ms = AdmValue::Multiset();
      size_t n = rng->Uniform(4);
      for (size_t i = 0; i < n; ++i) ms.Append(RandomValue(rng, depth - 1));
      return ms;
    }
  }
}

/// Random record: object with a declared bigint "id" plus random fields.
inline AdmValue RandomRecord(Rng* rng, int64_t id, int depth = 4) {
  AdmValue rec = AdmValue::Object();
  rec.AddField("id", AdmValue::BigInt(id));
  size_t n = 1 + rng->Uniform(6);
  // Field names are unique within the record but recur across records, so
  // schema inference exercises both merging and union widening.
  for (size_t i = 0; i < n; ++i) {
    rec.AddField("f" + std::to_string(i), RandomValue(rng, depth - 1));
  }
  return rec;
}

/// In-memory dataset fixture: owns the filesystem and buffer cache.
struct DatasetFixture {
  std::shared_ptr<FileSystem> fs = MakeMemFileSystem();
  std::unique_ptr<BufferCache> cache;
  std::unique_ptr<Dataset> dataset;

  Status Open(DatasetOptions options, size_t partitions = 1) {
    cache = std::make_unique<BufferCache>(options.page_size, 4096);
    options.fs = fs;
    options.cache = cache.get();
    options.dir = "mem";
    TC_ASSIGN_OR_RETURN(dataset, Dataset::Open(std::move(options), partitions));
    return Status::OK();
  }

  /// Closes and re-opens the dataset against the same filesystem contents —
  /// simulates a process restart (recovery path).
  Status Reopen(DatasetOptions options, size_t partitions = 1) {
    dataset.reset();
    options.fs = fs;
    options.cache = cache.get();
    options.dir = "mem";
    TC_ASSIGN_OR_RETURN(dataset, Dataset::Open(std::move(options), partitions));
    return Status::OK();
  }
};

/// Default small-memtable options so tests exercise flush/merge paths.
inline DatasetOptions SmallOptions(SchemaMode mode, size_t memtable_kb = 64) {
  DatasetOptions o;
  o.mode = mode;
  // Large enough for the biggest workload record in the fattest (open ADM)
  // encoding, small enough that multi-record tests build multi-page trees.
  o.page_size = 16384;
  o.memtable_budget_bytes = memtable_kb * 1024;
  o.merge = MergePolicyConfig();  // env-independent: tests pin the schedule
  o.merge.max_mergeable_bytes = 1 << 20;
  o.merge.max_tolerance_count = 4;
  // Pin the merge-pipeline knobs too (their defaults read TC_MERGE_* env).
  o.merge_transform = true;
  o.merge_recompress = CompressionKind::kNone;
  o.value_ordered_merges = true;
  o.wal_sync_every = 0;
  return o;
}

}  // namespace testutil
}  // namespace tc

#endif  // TC_TESTS_TEST_UTIL_H_
