// Randomized property tests for the per-component bloom filters and the
// point-lookup fast path: zero false negatives, in-tolerance false-positive
// rate, fence soundness, v1 (filterless) backward compatibility, and the
// unified filter-aware lookup helper (every entry point consults the filters
// and the key_may_exist hook).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "lsm/bloom_filter.h"
#include "lsm/lsm_tree.h"

namespace tc {
namespace {

std::string S(const Buffer& b) { return std::string(b.begin(), b.end()); }

struct FilterFixture {
  std::shared_ptr<FileSystem> fs = MakeMemFileSystem();
  BufferCache cache{4096, 1024};

  std::shared_ptr<BtreeComponent> Build(const std::vector<int64_t>& keys,
                                        BloomFilterConfig filter = {},
                                        const std::set<int64_t>& anti = {},
                                        const std::string& path = "comp") {
    auto b = BtreeComponentBuilder::Create(fs, path, 4096, nullptr, filter)
                 .ValueOrDie();
    for (int64_t k : keys) {
      bool is_anti = anti.count(k) > 0;
      Status st = b->Add(BtreeKey{k, 0}, is_anti, is_anti ? "" : "v");
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    EXPECT_TRUE(b->Finish(1, 1, {}).ok());
    EXPECT_TRUE(b->MarkValid().ok());
    return BtreeComponent::Open(fs, &cache, path, 4096, nullptr, filter)
        .ValueOrDie();
  }
};

std::vector<int64_t> RandomSortedKeys(Rng* rng, size_t n) {
  std::set<int64_t> keys;
  while (keys.size() < n) {
    keys.insert(static_cast<int64_t>(rng->Next() % (1ll << 40)));
  }
  return std::vector<int64_t>(keys.begin(), keys.end());
}

// --- Filter math sanity -----------------------------------------------------

TEST(BloomFilter, ProbeCountTracksBitsPerKey) {
  EXPECT_EQ(BloomFilter::ProbesForBitsPerKey(1), 1u);
  EXPECT_EQ(BloomFilter::ProbesForBitsPerKey(10), 6u);
  EXPECT_EQ(BloomFilter::ProbesForBitsPerKey(100), 30u);  // clamped
  EXPECT_GT(BloomFilter::ExpectedFpr(5), BloomFilter::ExpectedFpr(10));
  EXPECT_LT(BloomFilter::ExpectedFpr(10), 0.02);
}

TEST(BloomFilter, LoadRejectsMalformedBlobs) {
  BloomFilterBuilder b(10);
  for (uint64_t i = 0; i < 100; ++i) b.AddHash(BloomKeyHash(i, 0));
  Buffer blob;
  b.Finish(&blob);
  ASSERT_TRUE(BloomFilter::Load(blob.data(), blob.size()).ok());
  // Truncated.
  EXPECT_FALSE(BloomFilter::Load(blob.data(), blob.size() - 8).ok());
  EXPECT_FALSE(BloomFilter::Load(blob.data(), 4).ok());
  // Bad version.
  Buffer bad = blob;
  bad[0] = 9;
  EXPECT_FALSE(BloomFilter::Load(bad.data(), bad.size()).ok());
  // Bad probe count.
  bad = blob;
  bad[1] = 0;
  EXPECT_FALSE(BloomFilter::Load(bad.data(), bad.size()).ok());
}

// --- Core properties (component level) --------------------------------------

TEST(BloomFilter, ZeroFalseNegativesAcross10kKeys) {
  Rng rng(20260808);
  FilterFixture fx;
  std::vector<int64_t> keys = RandomSortedKeys(&rng, 10000);
  auto c = fx.Build(keys, BloomFilterConfig{/*bits_per_key=*/10, true});
  ASSERT_TRUE(c->has_filter());
  for (int64_t k : keys) {
    // A filter may never exclude a present key — this is the correctness
    // property everything else rests on.
    ASSERT_TRUE(c->MayContain(BtreeKey{k, 0})) << k;
    ASSERT_TRUE(c->Get(BtreeKey{k, 0}).ValueOrDie().has_value()) << k;
  }
}

TEST(BloomFilter, MeasuredFprWithinTwiceConfiguredTarget) {
  Rng rng(42);
  FilterFixture fx;
  std::vector<int64_t> keys = RandomSortedKeys(&rng, 10000);
  std::set<int64_t> present(keys.begin(), keys.end());
  auto c = fx.Build(keys, BloomFilterConfig{/*bits_per_key=*/10, true});
  ASSERT_TRUE(c->has_filter());

  size_t probes = 0, maybe = 0;
  while (probes < 20000) {
    int64_t k = static_cast<int64_t>(rng.Next() % (1ll << 40));
    if (present.count(k) > 0) continue;
    ++probes;
    // Probe the filter directly (fences would mask it for out-of-range keys).
    if (c->filter()->MayContainHash(BloomKeyHash(k, 0))) ++maybe;
  }
  double measured = static_cast<double>(maybe) / static_cast<double>(probes);
  double expected = BloomFilter::ExpectedFpr(10);
  EXPECT_LT(measured, 2.0 * expected)
      << "measured " << measured << " vs expected " << expected;
}

TEST(BloomFilter, FencePruningNeverExcludesPresentKey) {
  Rng rng(7);
  FilterFixture fx;
  std::vector<int64_t> keys = RandomSortedKeys(&rng, 2000);
  auto c = fx.Build(keys);
  for (int64_t k : keys) {
    ASSERT_TRUE(c->KeyInFence(BtreeKey{k, 0})) << k;
  }
  // And the fences do prune keys outside [min, max].
  EXPECT_FALSE(c->KeyInFence(BtreeKey{keys.front() - 1, 0}));
  EXPECT_FALSE(c->KeyInFence(BtreeKey{keys.back() + 1, 0}));
}

TEST(BloomFilter, AntiMatterKeysAreInTheFilter) {
  FilterFixture fx;
  auto c = fx.Build({10, 20, 30}, BloomFilterConfig{10, true}, /*anti=*/{20});
  // Skipping a component on its own tombstone would resurrect older
  // versions; anti-matter must probe positive.
  EXPECT_TRUE(c->MayContain(BtreeKey{20, 0}));
  auto hit = c->Get(BtreeKey{20, 0}).ValueOrDie();
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->anti);
}

TEST(BloomFilter, BitsPerKeyZeroBuildsNoFilter) {
  FilterFixture fx;
  auto c = fx.Build({1, 2, 3}, BloomFilterConfig{/*bits_per_key=*/0, false});
  EXPECT_FALSE(c->has_filter());
  EXPECT_FALSE(c->filter_degraded());
  // MayContain degrades to "maybe" — always correct.
  EXPECT_TRUE(c->MayContain(BtreeKey{999, 0}));
  EXPECT_TRUE(c->Get(BtreeKey{2, 0}).ValueOrDie().has_value());
}

// --- Backward compatibility (v1 footers) ------------------------------------

// Rewrites a v2 component footer in place as the pre-filter v1 layout: same
// fields through the CID range, v1 magic, CRC over the v1 prefix. This is
// byte-for-byte what pre-filter builds wrote, so the load path under test is
// the real legacy path.
void RewriteFooterAsV1(FileSystem* fs, const std::string& path,
                       size_t page_size) {
  auto file = fs->Open(path).ValueOrDie();
  uint64_t size = file->Size();
  ASSERT_EQ(size % page_size, 0u);
  uint64_t footer_off = size - page_size;
  Buffer page(page_size);
  ASSERT_TRUE(file->Read(footer_off, page_size, page.data()).ok());
  constexpr uint32_t kV1Magic = 0x54434254;  // "TCBT"
  constexpr size_t kV1Fixed = 84;
  OverwriteFixed32(&page, 0, kV1Magic);
  OverwriteFixed32(&page, kV1Fixed, Crc32c(page.data(), kV1Fixed));
  std::fill(page.begin() + kV1Fixed + 4, page.end(), 0);
  ASSERT_TRUE(file->Write(footer_off, page.data(), page_size).ok());
  ASSERT_TRUE(file->Sync().ok());
}

TEST(BloomFilter, FilterlessV1ComponentsStillLoadAndServe) {
  Rng rng(99);
  FilterFixture fx;
  std::vector<int64_t> keys = RandomSortedKeys(&rng, 500);
  {
    auto built = fx.Build(keys, BloomFilterConfig{10, true}, {}, "legacy");
    ASSERT_TRUE(built->has_filter());
  }
  RewriteFooterAsV1(fx.fs.get(), "legacy", 4096);

  auto c = BtreeComponent::Open(fx.fs, &fx.cache, "legacy", 4096, nullptr,
                                BloomFilterConfig{10, true})
               .ValueOrDie();
  EXPECT_FALSE(c->has_filter());
  EXPECT_FALSE(c->filter_degraded());
  for (int64_t k : keys) {
    ASSERT_TRUE(c->Get(BtreeKey{k, 0}).ValueOrDie().has_value()) << k;
  }
  EXPECT_EQ(c->meta().n_entries, keys.size());
}

// --- The memory-resident fast path ------------------------------------------

TEST(BloomFilter, InteriorPagesPinnedForMultiLevelTrees) {
  Rng rng(3);
  FilterFixture fx;
  std::vector<int64_t> keys = RandomSortedKeys(&rng, 5000);
  auto pinned = fx.Build(keys, BloomFilterConfig{10, /*pin=*/true}, {}, "p");
  EXPECT_GT(pinned->pinned_interior_pages(), 0u);
  EXPECT_GE(fx.cache.pinned_pages(), pinned->pinned_interior_pages());

  auto unpinned =
      fx.Build(keys, BloomFilterConfig{10, /*pin=*/false}, {}, "u");
  EXPECT_EQ(unpinned->pinned_interior_pages(), 0u);
}

TEST(BloomFilter, HotLookupCostsAtMostOneDiskRead) {
  Rng rng(5);
  FilterFixture fx;
  std::vector<int64_t> keys = RandomSortedKeys(&rng, 5000);
  auto c = fx.Build(keys, BloomFilterConfig{10, true});
  ASSERT_GT(c->pinned_interior_pages(), 0u);

  int64_t hot = keys[keys.size() / 2];
  uint64_t pages = 0;
  ASSERT_TRUE(c->Get(BtreeKey{hot, 0}, &pages).ValueOrDie().has_value());
  // Interior pages are pinned, so even the cold lookup reads only the leaf.
  EXPECT_LE(pages, 1u);
  // The warm lookup is free: the leaf now sits in the buffer cache.
  pages = 0;
  ASSERT_TRUE(c->Get(BtreeKey{hot, 0}, &pages).ValueOrDie().has_value());
  EXPECT_EQ(pages, 0u);
}

TEST(BloomFilter, PinnedPagesReleasedWhenComponentCloses) {
  Rng rng(6);
  FilterFixture fx;
  std::vector<int64_t> keys = RandomSortedKeys(&rng, 5000);
  size_t before = fx.cache.pinned_pages();
  {
    auto c = fx.Build(keys, BloomFilterConfig{10, true}, {}, "scoped");
    ASSERT_GT(fx.cache.pinned_pages(), before);
  }
  // Destroying the handle must unpin, or retired components would leak
  // memory-resident pages forever.
  EXPECT_EQ(fx.cache.pinned_pages(), before);
}

// --- Tree-level: unified filter-aware lookups + counters --------------------

struct TreeFixture {
  std::shared_ptr<FileSystem> fs = MakeMemFileSystem();
  BufferCache cache{4096, 2048};

  LsmTreeOptions Options() {
    LsmTreeOptions o;
    o.fs = fs;
    o.cache = &cache;
    o.dir = "lsm";
    o.name = "t";
    o.page_size = 4096;
    o.memtable_budget_bytes = 1 << 20;
    o.merge_policy = MakeNoMergePolicy();
    o.wal_sync_every = 0;
    return o;
  }
};

TEST(BloomFilterTree, MissesAnswerWithoutTouchingPages) {
  TreeFixture fx;
  auto o = fx.Options();
  o.filter = BloomFilterConfig{10, true};
  auto t = LsmTree::Open(std::move(o)).ValueOrDie();
  // Several flushed components of EVEN keys, so an unfiltered in-fence miss
  // (odd key) would walk every component's B-tree.
  for (int64_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(t->Insert(BtreeKey{2 * k, 0}, "payload").ok());
    if (k % 500 == 499) ASSERT_TRUE(t->Flush().ok());
  }
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_GE(t->component_count(), 4u);

  LsmStats before = t->stats();
  uint64_t misses = 0;
  for (int64_t k = 0; k < 2000; ++k) {
    auto hit = t->Get(BtreeKey{2 * k + 1, 0});  // in-fence, never inserted
    ASSERT_TRUE(hit.ok());
    if (!hit.value().has_value()) ++misses;
  }
  EXPECT_EQ(misses, 2000u);
  LsmStats after = t->stats();
  uint64_t checks = after.filter_checks - before.filter_checks;
  uint64_t negatives = after.filter_negatives - before.filter_negatives;
  uint64_t pages = after.lookup_pages_read - before.lookup_pages_read;
  // Practically every probe must be answered by the filter alone...
  EXPECT_GT(checks, 0u);
  EXPECT_GE(negatives + 20, checks);
  // ...so the miss storm touches (almost) no disk pages. Allow the rare
  // false positive its single leaf read.
  EXPECT_LE(pages, 40u);
}

TEST(BloomFilterTree, AllEntryPointsGoThroughTheFilterHelper) {
  TreeFixture fx;
  auto o = fx.Options();
  o.filter = BloomFilterConfig{10, true};
  auto t = LsmTree::Open(std::move(o)).ValueOrDie();
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(t->Insert(BtreeKey{k, 0}, "v").ok());
  }
  ASSERT_TRUE(t->Flush().ok());

  // Get on a present key.
  uint64_t c0 = t->stats().filter_checks;
  ASSERT_TRUE(t->Get(BtreeKey{100, 0}).ValueOrDie().has_value());
  uint64_t c1 = t->stats().filter_checks;
  EXPECT_GT(c1, c0);
  // GetDiskVersion.
  ASSERT_TRUE(t->GetDiskVersion(BtreeKey{101, 0}).ValueOrDie().has_value());
  uint64_t c2 = t->stats().filter_checks;
  EXPECT_GT(c2, c1);
  // View-based lookups (what secondary-index pk resolution uses).
  auto view = t->AcquireView();
  ASSERT_TRUE(view->Get(BtreeKey{102, 0}).ValueOrDie().has_value());
  uint64_t c3 = t->stats().filter_checks;
  EXPECT_GT(c3, c2);
}

TEST(BloomFilterTree, KeyMayExistConsultedOnUpsertAndDelete) {
  TreeFixture fx;
  auto o = fx.Options();
  o.capture_old_versions = true;
  uint64_t consultations = 0;
  o.key_may_exist = [&consultations](const BtreeKey&) {
    ++consultations;
    return false;  // "definitely absent" — old-version lookups must be skipped
  };
  auto t = LsmTree::Open(std::move(o)).ValueOrDie();
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "a").ok());
  ASSERT_TRUE(t->Flush().ok());

  // Upsert of a key missing from the memtable consults the hook...
  ASSERT_TRUE(t->Upsert(BtreeKey{50, 0}, "b").ok());
  EXPECT_EQ(consultations, 1u);
  uint64_t disk_lookups = t->stats().old_version_lookups;

  // ...and — the regression this test pins down — so does Delete: before the
  // unified helper, deletes always paid the full disk probe.
  std::optional<Buffer> old;
  ASSERT_TRUE(t->Delete(BtreeKey{60, 0}, &old).ok());
  EXPECT_EQ(consultations, 2u);
  EXPECT_FALSE(old.has_value());
  EXPECT_EQ(t->stats().old_version_lookups, disk_lookups);
}

TEST(BloomFilterTree, FalsePositivesAreCountedNotWrong) {
  TreeFixture fx;
  auto o = fx.Options();
  // 1 bit/key: a deliberately terrible filter, so false positives actually
  // occur and the counter path is exercised.
  o.filter = BloomFilterConfig{1, true};
  auto t = LsmTree::Open(std::move(o)).ValueOrDie();
  for (int64_t k = 0; k < 2000; k += 2) {
    ASSERT_TRUE(t->Insert(BtreeKey{k, 0}, "v").ok());
  }
  ASSERT_TRUE(t->Flush().ok());
  for (int64_t k = 1; k < 2000; k += 2) {
    // In-fence absent keys: correctness first — every miss must still miss.
    ASSERT_FALSE(t->Get(BtreeKey{k, 0}).ValueOrDie().has_value());
  }
  LsmStats s = t->stats();
  EXPECT_GT(s.filter_false_positives, 0u);
  EXPECT_EQ(s.filter_checks, s.filter_negatives + s.filter_false_positives);
}

TEST(BloomFilterTree, FiltersSurviveMergesAndRecovery) {
  TreeFixture fx;
  {
    auto o = fx.Options();
    o.filter = BloomFilterConfig{10, true};
    o.merge_policy = MakePrefixMergePolicy(32ull << 20, 2);
    auto t = LsmTree::Open(std::move(o)).ValueOrDie();
    for (int64_t k = 0; k < 4000; ++k) {
      ASSERT_TRUE(t->Insert(BtreeKey{k, 0}, "v").ok());
      if (k % 800 == 799) ASSERT_TRUE(t->Flush().ok());
    }
    ASSERT_TRUE(t->Flush().ok());
  }
  // Reopen: recovered components load their filters from disk.
  auto o = fx.Options();
  o.filter = BloomFilterConfig{10, true};
  auto t = LsmTree::Open(std::move(o)).ValueOrDie();
  for (const auto& comp : t->View().components()) {
    EXPECT_TRUE(comp->has_filter()) << comp->path();
    EXPECT_FALSE(comp->filter_degraded());
  }
  ASSERT_TRUE(t->Get(BtreeKey{1234, 0}).ValueOrDie().has_value());
  ASSERT_FALSE(t->Get(BtreeKey{99999, 0}).ValueOrDie().has_value());
}

}  // namespace
}  // namespace tc
