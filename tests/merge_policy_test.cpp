#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "common/rng.h"
#include "lsm/merge_policy.h"

namespace tc {
namespace {

constexpr uint64_t kMB = 1 << 20;

TEST(NoMerge, NeverMerges) {
  auto p = MakeNoMergePolicy();
  EXPECT_FALSE(p->Decide({kMB, kMB, kMB, kMB, kMB, kMB, kMB, kMB}).merge);
}

TEST(Prefix, UnderToleranceNoMerge) {
  // Figure 17 configuration: max mergeable size with tolerance 5.
  auto p = MakePrefixMergePolicy(32 * kMB, 5);
  EXPECT_FALSE(p->Decide({kMB, kMB, kMB, kMB, kMB}).merge);
}

TEST(Prefix, MergesWhenToleranceExceeded) {
  auto p = MakePrefixMergePolicy(32 * kMB, 5);
  MergeDecision d = p->Decide({kMB, kMB, kMB, kMB, kMB, kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 6u);  // all six fit under the 32 MB cap
}

TEST(Prefix, RespectsMaxMergeableSize) {
  auto p = MakePrefixMergePolicy(10 * kMB, 3);
  // Four 4MB components: only the two newest fit under 10MB... (4+4=8, +4=12).
  MergeDecision d = p->Decide({4 * kMB, 4 * kMB, 4 * kMB, 4 * kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.end - d.begin, 2u);
}

TEST(Prefix, IgnoresComponentsLargerThanMax) {
  auto p = MakePrefixMergePolicy(10 * kMB, 2);
  // A 64MB component at position 1 stops the mergeable run.
  MergeDecision d = p->Decide({kMB, 64 * kMB, kMB, kMB, kMB});
  EXPECT_FALSE(d.merge);  // run length 1 <= tolerance
  // Run of 3 small ones before the big one.
  d = p->Decide({kMB, kMB, kMB, 64 * kMB, kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 3u);
}

TEST(Prefix, PairwiseFallbackWhenOverflowing) {
  auto p = MakePrefixMergePolicy(5 * kMB, 1);
  MergeDecision d = p->Decide({4 * kMB, 4 * kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.end - d.begin, 2u);
}

TEST(Constant, MergesAllPastK) {
  auto p = MakeConstantMergePolicy(3);
  EXPECT_FALSE(p->Decide({kMB, kMB, kMB}).merge);
  MergeDecision d = p->Decide({kMB, kMB, kMB, kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 4u);
}

// Regression: with tolerance 0 and a single small component ahead of an
// oversized one, the old pairwise fallback forced take = 2 and pulled in the
// component the policy promises to leave alone.
TEST(Prefix, PairwiseFallbackNeverReachesPastTheRun) {
  auto p = MakePrefixMergePolicy(10 * kMB, 0);
  EXPECT_FALSE(p->Decide({kMB, 64 * kMB}).merge);
  EXPECT_FALSE(p->Decide({kMB, 64 * kMB, 64 * kMB, kMB}).merge);
  // A two-component run that overflows pairwise still merges — but only the
  // run, not the frozen component behind it.
  MergeDecision d = p->Decide({6 * kMB, 6 * kMB, 64 * kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 2u);
}

TEST(Tiered, UnderWidthNoMerge) {
  auto p = MakeTieredMergePolicy(/*size_ratio=*/4, /*min_merge_width=*/4);
  EXPECT_STREQ(p->name(), "tiered");
  EXPECT_FALSE(p->Decide({}).merge);
  EXPECT_FALSE(p->Decide({kMB, kMB, kMB}).merge);
}

TEST(Tiered, MergesFullTier) {
  auto p = MakeTieredMergePolicy(4, 4);
  MergeDecision d = p->Decide({kMB, 2 * kMB, kMB, 3 * kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 4u);
}

TEST(Tiered, SizeRatioSplitsTiers) {
  auto p = MakeTieredMergePolicy(4, 4);
  // The 16MB component belongs to a deeper tier: the newest run is 3 wide, so
  // nothing merges.
  EXPECT_FALSE(p->Decide({kMB, kMB, kMB, 16 * kMB}).merge);
  // A short newest tier does not block a full deeper one.
  MergeDecision d =
      p->Decide({kMB, 16 * kMB, 20 * kMB, 16 * kMB, 17 * kMB, 200 * kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 1u);
  EXPECT_EQ(d.end, 5u);
  // A geometric tower — the steady state of tiering — is stable: each level
  // reaches the ratio against the level above and never re-merges.
  EXPECT_FALSE(p->Decide({kMB, 4 * kMB, 16 * kMB, 64 * kMB}).merge);
}

TEST(LazyLeveled, SingleComponentNoMerge) {
  auto p = MakeLazyLeveledMergePolicy(4, 4);
  EXPECT_STREQ(p->name(), "lazy-leveled");
  EXPECT_FALSE(p->Decide({}).merge);
  EXPECT_FALSE(p->Decide({64 * kMB}).merge);
}

TEST(LazyLeveled, AbsorbsDeckIntoBottomWhenWideAndHeavyEnough) {
  auto p = MakeLazyLeveledMergePolicy(4, 4);
  // Deck of 4 components totalling 4MB; 4MB * 4 >= 8MB bottom → full merge.
  MergeDecision d = p->Decide({kMB, kMB, kMB, kMB, 8 * kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 5u);
}

TEST(LazyLeveled, TiersWithinDeckWhileBottomTooBig) {
  auto p = MakeLazyLeveledMergePolicy(4, 4);
  // Deck total 4MB, bottom 64MB: 4 * 4 < 64 → no absorb; the deck itself
  // forms a full 4-wide tier and merges WITHOUT touching the bottom.
  MergeDecision d = p->Decide({kMB, kMB, kMB, kMB, 64 * kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 4u);
  // A too-narrow deck never merges, however heavy.
  EXPECT_FALSE(p->Decide({30 * kMB, 64 * kMB}).merge);
}

TEST(EnvConfig, ParseAndFactoryCoverEveryKind) {
  MergePolicyKind k;
  ASSERT_TRUE(ParseMergePolicyKind("none", &k));
  EXPECT_EQ(k, MergePolicyKind::kNoMerge);
  ASSERT_TRUE(ParseMergePolicyKind("Tiered", &k));
  EXPECT_EQ(k, MergePolicyKind::kTiered);
  ASSERT_TRUE(ParseMergePolicyKind("lazy", &k));
  EXPECT_EQ(k, MergePolicyKind::kLazyLeveled);
  EXPECT_FALSE(ParseMergePolicyKind("leveled-eagerly", &k));
  for (MergePolicyKind kind :
       {MergePolicyKind::kNoMerge, MergePolicyKind::kPrefix,
        MergePolicyKind::kConstant, MergePolicyKind::kTiered,
        MergePolicyKind::kLazyLeveled}) {
    MergePolicyConfig c;
    c.kind = kind;
    auto p = MakeMergePolicy(c);
    ASSERT_NE(p, nullptr);
    MergePolicyKind parsed;
    ASSERT_TRUE(ParseMergePolicyKind(MergePolicyKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
}

TEST(EnvConfig, FromEnvOverlaysKnobs) {
  ::setenv("TC_MERGE_POLICY", "lazy-leveled", 1);
  ::setenv("TC_MERGE_SIZE_RATIO", "7", 1);
  ::setenv("TC_MERGE_TOLERANCE", "9", 1);
  MergePolicyConfig defaults;
  defaults.max_mergeable_bytes = 3 * kMB;
  MergePolicyConfig c = MergePolicyConfig::FromEnv(defaults);
  EXPECT_EQ(c.kind, MergePolicyKind::kLazyLeveled);
  EXPECT_EQ(c.size_ratio, 7u);
  EXPECT_EQ(c.max_tolerance_count, 9u);
  EXPECT_EQ(c.max_mergeable_bytes, 3 * kMB);  // unset knob keeps the default
  // Regression: an unset TC_MERGE_MAX_MB must not round-trip a sub-MiB
  // default through the MiB conversion (512 KiB would become 0 = never merge).
  defaults.max_mergeable_bytes = 512 * 1024;
  EXPECT_EQ(MergePolicyConfig::FromEnv(defaults).max_mergeable_bytes,
            512u * 1024);
  ::unsetenv("TC_MERGE_POLICY");
  ::unsetenv("TC_MERGE_SIZE_RATIO");
  ::unsetenv("TC_MERGE_TOLERANCE");
  EXPECT_EQ(MergePolicyConfig::FromEnv().kind, MergePolicyKind::kPrefix);
}

// Randomized invariant check: simulate the flush/decide/apply loop the tree
// runs (one decision per flush, merged range replaced by its size sum) and
// assert, for every policy: decisions are well-formed ranges at least two
// wide, prefix never merges a component that exceeded max_mergeable_bytes,
// and the merging policies keep the component count bounded.
TEST(AllPolicies, RandomizedSimulationInvariants) {
  struct Case {
    std::shared_ptr<MergePolicy> policy;
    bool bounds_count;
    uint64_t prefix_max_bytes;  // 0 = not a prefix policy
  };
  const uint64_t kPrefixMax = 2 * kMB;
  std::vector<Case> cases = {
      {MakeNoMergePolicy(), false, 0},
      {MakePrefixMergePolicy(kPrefixMax, 3), true, kPrefixMax},
      {MakeConstantMergePolicy(5), true, 0},
      {MakeTieredMergePolicy(3, 3), true, 0},
      {MakeLazyLeveledMergePolicy(3, 3), true, 0},
  };
  Rng rng(20260726);
  for (const Case& c : cases) {
    std::vector<uint64_t> sizes;
    size_t high_water = 0;
    for (int flush = 0; flush < 600; ++flush) {
      // New flushed component, 10KB..200KB.
      sizes.insert(sizes.begin(), 10 * 1024 + rng.Uniform(190 * 1024));
      MergeDecision d = c.policy->Decide(sizes);
      if (d.merge) {
        ASSERT_LT(d.begin, d.end) << c.policy->name();
        ASSERT_LE(d.end, sizes.size()) << c.policy->name();
        ASSERT_GE(d.end - d.begin, 2u) << c.policy->name();
        if (c.prefix_max_bytes != 0) {
          for (size_t i = d.begin; i < d.end; ++i) {
            ASSERT_LT(sizes[i], c.prefix_max_bytes)
                << c.policy->name() << " merged an oversized component";
          }
        }
        uint64_t sum = 0;
        for (size_t i = d.begin; i < d.end; ++i) sum += sizes[i];
        sizes.erase(sizes.begin() + static_cast<ptrdiff_t>(d.begin),
                    sizes.begin() + static_cast<ptrdiff_t>(d.end));
        sizes.insert(sizes.begin() + static_cast<ptrdiff_t>(d.begin), sum);
      }
      high_water = std::max(high_water, sizes.size());
    }
    if (c.bounds_count) {
      EXPECT_LE(high_water, 64u) << c.policy->name();
    } else {
      EXPECT_EQ(high_water, 600u) << c.policy->name();  // no-merge keeps all
    }
  }
}

// ---------------------------------------------------------------------------
// Claim-aware decisions (concurrent disjoint merges): components pinned by an
// in-flight merge partition the vector, and policies re-apply their logic
// within each unclaimed run.
// ---------------------------------------------------------------------------

TEST(ClaimAware, EmptyClaimsMatchSingleArgDecide) {
  // The two-arg overload with nothing claimed must reproduce the historical
  // decision bit for bit — the inline (single-inflight) path depends on it.
  std::vector<std::shared_ptr<MergePolicy>> policies = {
      MakeNoMergePolicy(), MakePrefixMergePolicy(2 * kMB, 3),
      MakeConstantMergePolicy(5), MakeTieredMergePolicy(3, 3),
      MakeLazyLeveledMergePolicy(3, 3)};
  Rng rng(777);
  for (const auto& p : policies) {
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<uint64_t> sizes(1 + rng.Uniform(12));
      for (auto& s : sizes) s = 1024 + rng.Uniform(4 * kMB);
      MergeDecision a = p->Decide(sizes);
      MergeDecision b = p->Decide(sizes, std::vector<bool>(sizes.size(), false));
      EXPECT_EQ(a.merge, b.merge) << p->name();
      if (a.merge) {
        EXPECT_EQ(a.begin, b.begin) << p->name();
        EXPECT_EQ(a.end, b.end) << p->name();
      }
    }
  }
}

TEST(ClaimAware, PrefixProposesBehindAndAheadOfClaimedRun) {
  auto p = MakePrefixMergePolicy(32 * kMB, 1);
  // The two newest are claimed by a running merge; the run behind them still
  // exceeds the tolerance and merges on its own.
  std::vector<uint64_t> sizes = {kMB, kMB, kMB, kMB, kMB};
  std::vector<bool> claimed = {true, true, false, false, false};
  MergeDecision d = p->Decide(sizes, claimed);
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 2u);
  EXPECT_EQ(d.end, 5u);
  // Claimed in the middle: fresh flushes in FRONT of the claimed run merge.
  claimed = {false, false, false, true, true};
  d = p->Decide(sizes, claimed);
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 3u);
}

TEST(ClaimAware, TieredTiersWithinUnclaimedRuns) {
  auto p = MakeTieredMergePolicy(3, 2);
  // [claimed claimed | s s] — the unclaimed pair is a full tier of its own.
  std::vector<uint64_t> sizes = {kMB, kMB, kMB, kMB};
  std::vector<bool> claimed = {true, true, false, false};
  MergeDecision d = p->Decide(sizes, claimed);
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 2u);
  EXPECT_EQ(d.end, 4u);
  // A claimed component splits what would otherwise be one wide tier; each
  // side is too narrow on its own.
  claimed = {false, true, false, false};
  d = p->Decide({kMB, kMB, kMB, 100 * kMB}, claimed);
  EXPECT_FALSE(d.merge);
}

TEST(ClaimAware, ConstantMergesTheUnclaimedRunOnly) {
  auto p = MakeConstantMergePolicy(2);
  std::vector<uint64_t> sizes = {kMB, kMB, kMB, kMB, kMB};
  std::vector<bool> claimed = {true, true, false, false, false};
  MergeDecision d = p->Decide(sizes, claimed);
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 2u);
  EXPECT_EQ(d.end, 5u);
}

TEST(ClaimAware, LazyLeveledNeverAbsorbsWhileAMergeRuns) {
  auto p = MakeLazyLeveledMergePolicy(2, 2);
  // Unclaimed, deck wide + heavy enough: full absorb into the bottom.
  std::vector<uint64_t> sizes = {4 * kMB, 4 * kMB, 8 * kMB};
  MergeDecision d = p->Decide(sizes);
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 3u);
  // Any claim forbids the absorb (it would need every component); the
  // unclaimed deck pair still tiers.
  std::vector<bool> claimed = {false, false, true};
  d = p->Decide(sizes, claimed);
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 2u);
}

// Property: whatever the claim pattern, a proposed range is well-formed and
// never overlaps a claimed component — the invariant the tree's scheduler
// (and its double-merge hardening) relies on.
TEST(ClaimAware, ProposalsNeverOverlapClaims) {
  std::vector<std::shared_ptr<MergePolicy>> policies = {
      MakePrefixMergePolicy(2 * kMB, 2), MakeConstantMergePolicy(3),
      MakeTieredMergePolicy(3, 2), MakeLazyLeveledMergePolicy(3, 2)};
  Rng rng(20260726);
  for (const auto& p : policies) {
    for (int trial = 0; trial < 400; ++trial) {
      std::vector<uint64_t> sizes(1 + rng.Uniform(14));
      std::vector<bool> claimed(sizes.size());
      for (size_t i = 0; i < sizes.size(); ++i) {
        sizes[i] = 1024 + rng.Uniform(4 * kMB);
        claimed[i] = rng.Bernoulli(0.3);
      }
      MergeDecision d = p->Decide(sizes, claimed);
      if (!d.merge) continue;
      ASSERT_LT(d.begin, d.end) << p->name();
      ASSERT_LE(d.end, sizes.size()) << p->name();
      ASSERT_GE(d.end - d.begin, 2u) << p->name();
      for (size_t i = d.begin; i < d.end; ++i) {
        ASSERT_FALSE(claimed[i]) << p->name() << " proposed a claimed component";
      }
    }
  }
}

}  // namespace
}  // namespace tc
