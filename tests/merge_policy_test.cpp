#include <gtest/gtest.h>

#include "lsm/merge_policy.h"

namespace tc {
namespace {

constexpr uint64_t kMB = 1 << 20;

TEST(NoMerge, NeverMerges) {
  auto p = MakeNoMergePolicy();
  EXPECT_FALSE(p->Decide({kMB, kMB, kMB, kMB, kMB, kMB, kMB, kMB}).merge);
}

TEST(Prefix, UnderToleranceNoMerge) {
  // Figure 17 configuration: max mergeable size with tolerance 5.
  auto p = MakePrefixMergePolicy(32 * kMB, 5);
  EXPECT_FALSE(p->Decide({kMB, kMB, kMB, kMB, kMB}).merge);
}

TEST(Prefix, MergesWhenToleranceExceeded) {
  auto p = MakePrefixMergePolicy(32 * kMB, 5);
  MergeDecision d = p->Decide({kMB, kMB, kMB, kMB, kMB, kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 6u);  // all six fit under the 32 MB cap
}

TEST(Prefix, RespectsMaxMergeableSize) {
  auto p = MakePrefixMergePolicy(10 * kMB, 3);
  // Four 4MB components: only the two newest fit under 10MB... (4+4=8, +4=12).
  MergeDecision d = p->Decide({4 * kMB, 4 * kMB, 4 * kMB, 4 * kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.end - d.begin, 2u);
}

TEST(Prefix, IgnoresComponentsLargerThanMax) {
  auto p = MakePrefixMergePolicy(10 * kMB, 2);
  // A 64MB component at position 1 stops the mergeable run.
  MergeDecision d = p->Decide({kMB, 64 * kMB, kMB, kMB, kMB});
  EXPECT_FALSE(d.merge);  // run length 1 <= tolerance
  // Run of 3 small ones before the big one.
  d = p->Decide({kMB, kMB, kMB, 64 * kMB, kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 3u);
}

TEST(Prefix, PairwiseFallbackWhenOverflowing) {
  auto p = MakePrefixMergePolicy(5 * kMB, 1);
  MergeDecision d = p->Decide({4 * kMB, 4 * kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.end - d.begin, 2u);
}

TEST(Constant, MergesAllPastK) {
  auto p = MakeConstantMergePolicy(3);
  EXPECT_FALSE(p->Decide({kMB, kMB, kMB}).merge);
  MergeDecision d = p->Decide({kMB, kMB, kMB, kMB});
  ASSERT_TRUE(d.merge);
  EXPECT_EQ(d.begin, 0u);
  EXPECT_EQ(d.end, 4u);
}

}  // namespace
}  // namespace tc
