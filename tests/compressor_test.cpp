#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/compressor.h"

namespace tc {
namespace {

Buffer RoundTrip(const Compressor& c, const Buffer& input) {
  Buffer compressed;
  EXPECT_TRUE(c.Compress(input.data(), input.size(), &compressed).ok());
  Buffer output(input.size() + 16);
  size_t out_size = 0;
  Status st = c.Decompress(compressed.data(), compressed.size(), output.data(),
                           output.size(), &out_size);
  EXPECT_TRUE(st.ok()) << st.ToString();
  output.resize(out_size);
  return output;
}

class CompressorRoundTrip : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(CompressorRoundTrip, Empty) {
  auto c = GetCompressor(GetParam());
  Buffer input;
  EXPECT_EQ(RoundTrip(*c, input), input);
}

TEST_P(CompressorRoundTrip, SmallInputs) {
  auto c = GetCompressor(GetParam());
  for (size_t n = 1; n <= 16; ++n) {
    Buffer input(n, static_cast<uint8_t>('a' + n));
    EXPECT_EQ(RoundTrip(*c, input), input) << n;
  }
}

TEST_P(CompressorRoundTrip, RepetitiveData) {
  auto c = GetCompressor(GetParam());
  Buffer input;
  for (int i = 0; i < 1000; ++i) {
    const char* words[] = {"timestamp", "value", "sensor", "reading"};
    const char* w = words[i % 4];
    input.insert(input.end(), w, w + strlen(w));
  }
  EXPECT_EQ(RoundTrip(*c, input), input);
}

TEST_P(CompressorRoundTrip, RandomIncompressible) {
  auto c = GetCompressor(GetParam());
  Rng rng(1);
  Buffer input(8192);
  for (auto& b : input) b = static_cast<uint8_t>(rng.Next());
  EXPECT_EQ(RoundTrip(*c, input), input);
}

TEST_P(CompressorRoundTrip, PropertyRandomStructured) {
  auto c = GetCompressor(GetParam());
  Rng rng(7);
  for (int iter = 0; iter < 60; ++iter) {
    Buffer input;
    size_t target = rng.Uniform(100000);
    while (input.size() < target) {
      if (rng.Bernoulli(0.5)) {
        std::string word = rng.AlphaString(1 + rng.Uniform(12));
        size_t reps = 1 + rng.Uniform(20);
        for (size_t r = 0; r < reps; ++r) {
          input.insert(input.end(), word.begin(), word.end());
        }
      } else {
        size_t n = rng.Uniform(64);
        for (size_t i = 0; i < n; ++i) {
          input.push_back(static_cast<uint8_t>(rng.Next()));
        }
      }
    }
    ASSERT_EQ(RoundTrip(*c, input), input) << "iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CompressorRoundTrip,
                         ::testing::Values(CompressionKind::kNone,
                                           CompressionKind::kSnappy),
                         [](const auto& info) {
                           return info.param == CompressionKind::kNone ? "None"
                                                                       : "Snappy";
                         });

TEST(Snappy, CompressesRedundantPages) {
  auto c = GetCompressor(CompressionKind::kSnappy);
  Buffer page(32768);
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>("field_name_prefix_"[i % 18]);
  }
  Buffer compressed;
  ASSERT_TRUE(c->Compress(page.data(), page.size(), &compressed).ok());
  EXPECT_LT(compressed.size() * 4, page.size());  // at least 4x on pure repeats
}

TEST(Snappy, DecompressRejectsGarbage) {
  auto c = GetCompressor(CompressionKind::kSnappy);
  Buffer garbage = {0xFF, 0xFF, 0xFF, 0x03, 0x02, 0x01};
  Buffer out(1024);
  size_t n = 0;
  EXPECT_FALSE(c->Decompress(garbage.data(), garbage.size(), out.data(),
                             out.size(), &n)
                   .ok());
}

TEST(Snappy, DecompressRejectsTooSmallOutput) {
  auto c = GetCompressor(CompressionKind::kSnappy);
  Buffer input(1000, 'x');
  Buffer compressed;
  ASSERT_TRUE(c->Compress(input.data(), input.size(), &compressed).ok());
  Buffer out(10);
  size_t n = 0;
  EXPECT_FALSE(c->Decompress(compressed.data(), compressed.size(), out.data(),
                             out.size(), &n)
                   .ok());
}

TEST(Snappy, LargeInputCrossesBlockBoundaries) {
  auto c = GetCompressor(CompressionKind::kSnappy);
  Rng rng(3);
  Buffer input;
  for (int i = 0; i < 30000; ++i) {
    std::string token = "k" + std::to_string(i % 97) + "=v" +
                        std::to_string(rng.Uniform(10)) + ";";
    input.insert(input.end(), token.begin(), token.end());
  }
  ASSERT_GT(input.size(), 128u * 1024);
  EXPECT_EQ(RoundTrip(*c, input), input);
}

}  // namespace
}  // namespace tc
