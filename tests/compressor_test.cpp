#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>

#include "common/rng.h"
#include "storage/compressor.h"

namespace tc {
namespace {

Buffer RoundTrip(const Compressor& c, const Buffer& input) {
  Buffer compressed;
  EXPECT_TRUE(c.Compress(input.data(), input.size(), &compressed).ok());
  Buffer output(input.size() + 16);
  size_t out_size = 0;
  Status st = c.Decompress(compressed.data(), compressed.size(), output.data(),
                           output.size(), &out_size);
  EXPECT_TRUE(st.ok()) << st.ToString();
  output.resize(out_size);
  return output;
}

class CompressorRoundTrip : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(CompressorRoundTrip, Empty) {
  auto c = GetCompressor(GetParam());
  Buffer input;
  EXPECT_EQ(RoundTrip(*c, input), input);
}

TEST_P(CompressorRoundTrip, SmallInputs) {
  auto c = GetCompressor(GetParam());
  for (size_t n = 1; n <= 16; ++n) {
    Buffer input(n, static_cast<uint8_t>('a' + n));
    EXPECT_EQ(RoundTrip(*c, input), input) << n;
  }
}

TEST_P(CompressorRoundTrip, RepetitiveData) {
  auto c = GetCompressor(GetParam());
  Buffer input;
  for (int i = 0; i < 1000; ++i) {
    const char* words[] = {"timestamp", "value", "sensor", "reading"};
    const char* w = words[i % 4];
    input.insert(input.end(), w, w + strlen(w));
  }
  EXPECT_EQ(RoundTrip(*c, input), input);
}

TEST_P(CompressorRoundTrip, RandomIncompressible) {
  auto c = GetCompressor(GetParam());
  Rng rng(1);
  Buffer input(8192);
  for (auto& b : input) b = static_cast<uint8_t>(rng.Next());
  EXPECT_EQ(RoundTrip(*c, input), input);
}

TEST_P(CompressorRoundTrip, PropertyRandomStructured) {
  auto c = GetCompressor(GetParam());
  Rng rng(7);
  for (int iter = 0; iter < 60; ++iter) {
    Buffer input;
    size_t target = rng.Uniform(100000);
    while (input.size() < target) {
      if (rng.Bernoulli(0.5)) {
        std::string word = rng.AlphaString(1 + rng.Uniform(12));
        size_t reps = 1 + rng.Uniform(20);
        for (size_t r = 0; r < reps; ++r) {
          input.insert(input.end(), word.begin(), word.end());
        }
      } else {
        size_t n = rng.Uniform(64);
        for (size_t i = 0; i < n; ++i) {
          input.push_back(static_cast<uint8_t>(rng.Next()));
        }
      }
    }
    ASSERT_EQ(RoundTrip(*c, input), input) << "iter=" << iter;
  }
}

std::vector<CompressionKind> AvailableKinds() {
  std::vector<CompressionKind> kinds = {CompressionKind::kNone,
                                        CompressionKind::kSnappy,
                                        CompressionKind::kHeavy};
  // The real-library codecs join the matrix only when compiled in.
  if (CompressorAvailable(CompressionKind::kZstd)) {
    kinds.push_back(CompressionKind::kZstd);
  }
  if (CompressorAvailable(CompressionKind::kLz4)) {
    kinds.push_back(CompressionKind::kLz4);
  }
  return kinds;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CompressorRoundTrip,
                         ::testing::ValuesIn(AvailableKinds()),
                         [](const auto& info) {
                           std::string n = CompressionKindName(info.param);
                           n[0] = static_cast<char>(std::toupper(n[0]));
                           return n;
                         });

TEST(Snappy, CompressesRedundantPages) {
  auto c = GetCompressor(CompressionKind::kSnappy);
  Buffer page(32768);
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>("field_name_prefix_"[i % 18]);
  }
  Buffer compressed;
  ASSERT_TRUE(c->Compress(page.data(), page.size(), &compressed).ok());
  EXPECT_LT(compressed.size() * 4, page.size());  // at least 4x on pure repeats
}

TEST(Snappy, DecompressRejectsGarbage) {
  auto c = GetCompressor(CompressionKind::kSnappy);
  Buffer garbage = {0xFF, 0xFF, 0xFF, 0x03, 0x02, 0x01};
  Buffer out(1024);
  size_t n = 0;
  EXPECT_FALSE(c->Decompress(garbage.data(), garbage.size(), out.data(),
                             out.size(), &n)
                   .ok());
}

TEST(Snappy, DecompressRejectsTooSmallOutput) {
  auto c = GetCompressor(CompressionKind::kSnappy);
  Buffer input(1000, 'x');
  Buffer compressed;
  ASSERT_TRUE(c->Compress(input.data(), input.size(), &compressed).ok());
  Buffer out(10);
  size_t n = 0;
  EXPECT_FALSE(c->Decompress(compressed.data(), compressed.size(), out.data(),
                             out.size(), &n)
                   .ok());
}

TEST(Snappy, LargeInputCrossesBlockBoundaries) {
  auto c = GetCompressor(CompressionKind::kSnappy);
  Rng rng(3);
  Buffer input;
  for (int i = 0; i < 30000; ++i) {
    std::string token = "k" + std::to_string(i % 97) + "=v" +
                        std::to_string(rng.Uniform(10)) + ";";
    input.insert(input.end(), token.begin(), token.end());
  }
  ASSERT_GT(input.size(), 128u * 1024);
  EXPECT_EQ(RoundTrip(*c, input), input);
}

TEST(Heavy, BeatsSnappyOnStructuredData) {
  // The recompression tier's whole point: on record-shaped redundant data the
  // hash-chain matcher with long copies must produce smaller output than the
  // single-probe snappy tier.
  auto heavy = GetCompressor(CompressionKind::kHeavy);
  auto snappy = GetCompressor(CompressionKind::kSnappy);
  Rng rng(17);
  Buffer input;
  for (int i = 0; i < 4000; ++i) {
    std::string rec = "{\"sensor_id\":" + std::to_string(i % 50) +
                      ",\"reading\":" + std::to_string(rng.Uniform(1000)) +
                      ",\"status\":\"ok\"}";
    input.insert(input.end(), rec.begin(), rec.end());
  }
  Buffer h, s;
  ASSERT_TRUE(heavy->Compress(input.data(), input.size(), &h).ok());
  ASSERT_TRUE(snappy->Compress(input.data(), input.size(), &s).ok());
  EXPECT_LT(h.size(), s.size());
  EXPECT_EQ(RoundTrip(*heavy, input), input);
}

TEST(Heavy, LongCopyOpsRoundTrip) {
  // A long run of one repeated phrase exercises the 4-byte long-copy op
  // (match lengths far past the 64-byte short-copy cap).
  auto c = GetCompressor(CompressionKind::kHeavy);
  Buffer input;
  for (int i = 0; i < 3000; ++i) {
    const char* w = "abcdefghij";
    input.insert(input.end(), w, w + 10);
  }
  Buffer compressed;
  ASSERT_TRUE(c->Compress(input.data(), input.size(), &compressed).ok());
  // 30 KB of a 10-byte cycle must collapse to well under 1 KB with long copies.
  EXPECT_LT(compressed.size(), 1024u);
  EXPECT_EQ(RoundTrip(*c, input), input);
}

TEST(Heavy, SnappyDecoderRejectsLongCopyStreams) {
  auto heavy = GetCompressor(CompressionKind::kHeavy);
  auto snappy = GetCompressor(CompressionKind::kSnappy);
  Buffer input;
  for (int i = 0; i < 1000; ++i) {
    const char* w = "0123456789abcdef";
    input.insert(input.end(), w, w + 16);
  }
  Buffer compressed;
  ASSERT_TRUE(heavy->Compress(input.data(), input.size(), &compressed).ok());
  Buffer out(input.size());
  size_t n = 0;
  // The heavy stream uses tag&3==1 ops the snappy decoder must refuse.
  EXPECT_FALSE(snappy
                   ->Decompress(compressed.data(), compressed.size(),
                                out.data(), out.size(), &n)
                   .ok());
}

TEST(CompressionKindHelpers, ParseNameAvailable) {
  CompressionKind k;
  EXPECT_TRUE(ParseCompressionKind("heavy", &k));
  EXPECT_EQ(k, CompressionKind::kHeavy);
  EXPECT_TRUE(ParseCompressionKind("SNAPPY", &k));
  EXPECT_EQ(k, CompressionKind::kSnappy);
  EXPECT_TRUE(ParseCompressionKind("none", &k));
  EXPECT_EQ(k, CompressionKind::kNone);
  EXPECT_TRUE(ParseCompressionKind("zstd", &k));
  EXPECT_EQ(k, CompressionKind::kZstd);
  EXPECT_TRUE(ParseCompressionKind("lz4", &k));
  EXPECT_EQ(k, CompressionKind::kLz4);
  EXPECT_FALSE(ParseCompressionKind("gzip", &k));

  EXPECT_STREQ(CompressionKindName(CompressionKind::kHeavy), "heavy");
  EXPECT_TRUE(CompressorAvailable(CompressionKind::kNone));
  EXPECT_TRUE(CompressorAvailable(CompressionKind::kSnappy));
  EXPECT_TRUE(CompressorAvailable(CompressionKind::kHeavy));
  // zstd/lz4 availability depends on the build; GetCompressor must agree.
  EXPECT_EQ(CompressorAvailable(CompressionKind::kZstd),
            GetCompressor(CompressionKind::kZstd) != nullptr);
  EXPECT_EQ(CompressorAvailable(CompressionKind::kLz4),
            GetCompressor(CompressionKind::kLz4) != nullptr);
}

TEST(CompressionKindHelpers, FromEnv) {
  ::setenv("TC_TEST_CODEC", "heavy", 1);
  EXPECT_EQ(CompressionKindFromEnv("TC_TEST_CODEC", CompressionKind::kSnappy),
            CompressionKind::kHeavy);
  ::setenv("TC_TEST_CODEC", "not-a-codec", 1);
  EXPECT_EQ(CompressionKindFromEnv("TC_TEST_CODEC", CompressionKind::kSnappy),
            CompressionKind::kSnappy);
  ::unsetenv("TC_TEST_CODEC");
  EXPECT_EQ(CompressionKindFromEnv("TC_TEST_CODEC", CompressionKind::kNone),
            CompressionKind::kNone);
}

}  // namespace
}  // namespace tc
