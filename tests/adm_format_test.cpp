#include <gtest/gtest.h>

#include "adm/parser.h"
#include "adm/printer.h"
#include "format/adm_format.h"
#include "tests/test_util.h"

namespace tc {
namespace {

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }
DatasetType PkType() { return DatasetType::OpenWithPk("id"); }

DatasetType ClosedEmployeeType() {
  DatasetType d;
  d.primary_key_field = "id";
  d.root = TypeDescriptor::Object(false);
  d.root->AddField("id", TypeDescriptor::Scalar(AdmTag::kBigInt));
  d.root->AddField("name", TypeDescriptor::Scalar(AdmTag::kString));
  auto dep = TypeDescriptor::Object(false);
  dep->AddField("name", TypeDescriptor::Scalar(AdmTag::kString));
  dep->AddField("age", TypeDescriptor::Scalar(AdmTag::kBigInt));
  d.root->AddField("dependents", TypeDescriptor::Collection(AdmTag::kMultiset, dep));
  return d;
}

TEST(AdmFormat, OpenRoundTrip) {
  DatasetType type = PkType();
  AdmValue rec = R(R"({"id": 3, "a": [1, {"b": "x"}], "c": point(1.0, 2.0)})");
  Buffer b;
  ASSERT_TRUE(EncodeAdmRecord(rec, type, &b).ok());
  AdmValue out;
  ASSERT_TRUE(DecodeAdmRecord(b.data(), b.size(), type, &out).ok());
  EXPECT_EQ(out, rec);
}

TEST(AdmFormat, ClosedRoundTripAndFieldOrder) {
  DatasetType type = ClosedEmployeeType();
  AdmValue rec = R(R"({"id": 1, "name": "Ann",
                      "dependents": {{ {"name": "Bob", "age": 6} }} })");
  Buffer b;
  ASSERT_TRUE(EncodeAdmRecord(rec, type, &b).ok());
  AdmValue out;
  ASSERT_TRUE(DecodeAdmRecord(b.data(), b.size(), type, &out).ok());
  // Decoded closed records present declared fields in declared order.
  EXPECT_EQ(PrintAdm(out), PrintAdm(rec));
}

TEST(AdmFormat, ClosedIsSmallerThanOpen) {
  // Closed records omit field names — the core premise of paper Figure 7/16.
  DatasetType open_type = PkType();
  DatasetType closed_type = ClosedEmployeeType();
  AdmValue rec = R(R"({"id": 1, "name": "Ann",
                      "dependents": {{ {"name": "Bob", "age": 6},
                                       {"name": "Carol", "age": 10} }} })");
  Buffer open_bytes, closed_bytes;
  ASSERT_TRUE(EncodeAdmRecord(rec, open_type, &open_bytes).ok());
  ASSERT_TRUE(EncodeAdmRecord(rec, closed_type, &closed_bytes).ok());
  EXPECT_LT(closed_bytes.size(), open_bytes.size());
}

TEST(AdmFormat, AbsentDeclaredOptionalField) {
  DatasetType type = ClosedEmployeeType();
  AdmValue rec = R(R"({"id": 2, "name": "Nodeps"})");
  Buffer b;
  ASSERT_TRUE(EncodeAdmRecord(rec, type, &b).ok());
  AdmValue out;
  ASSERT_TRUE(DecodeAdmRecord(b.data(), b.size(), type, &out).ok());
  EXPECT_EQ(out.field_count(), 2u);
  EXPECT_EQ(out.FindField("dependents"), nullptr);
}

TEST(AdmFormat, MixedDeclaredAndOpenFields) {
  DatasetType type = ClosedEmployeeType();
  AdmValue rec = R(R"({"id": 4, "name": "Mixed", "extra_open": {"deep": [true]}})");
  Buffer b;
  ASSERT_TRUE(EncodeAdmRecord(rec, type, &b).ok());
  AdmValue out;
  ASSERT_TRUE(DecodeAdmRecord(b.data(), b.size(), type, &out).ok());
  EXPECT_EQ(out.FindField("extra_open")->FindField("deep")->item(0).bool_value(),
            true);
}

TEST(AdmFormat, PropertyRandomRoundTrip) {
  DatasetType type = PkType();
  Rng rng(808);
  for (int i = 0; i < 300; ++i) {
    AdmValue rec = testutil::RandomRecord(&rng, i, 5);
    Buffer b;
    ASSERT_TRUE(EncodeAdmRecord(rec, type, &b).ok());
    AdmValue out;
    ASSERT_TRUE(DecodeAdmRecord(b.data(), b.size(), type, &out).ok());
    EXPECT_EQ(PrintAdm(out), PrintAdm(rec)) << i;
  }
}

TEST(AdmGetPath, DirectAndNested) {
  DatasetType type = PkType();
  AdmValue rec = R(R"({"id": 3, "user": {"name": "Ann", "tags": ["a", "b"]}})");
  Buffer b;
  ASSERT_TRUE(EncodeAdmRecord(rec, type, &b).ok());

  AdmValue v;
  ASSERT_TRUE(AdmGetPath(b.data(), b.size(), type,
                         {PathStep::Field("user"), PathStep::Field("name")}, &v)
                  .ok());
  EXPECT_EQ(v.string_value(), "Ann");

  ASSERT_TRUE(AdmGetPath(b.data(), b.size(), type,
                         {PathStep::Field("user"), PathStep::Field("tags"),
                          PathStep::Index(1)},
                         &v)
                  .ok());
  EXPECT_EQ(v.string_value(), "b");

  // Missing paths yield `missing`, not errors.
  ASSERT_TRUE(
      AdmGetPath(b.data(), b.size(), type, {PathStep::Field("nope")}, &v).ok());
  EXPECT_EQ(v.tag(), AdmTag::kMissing);
  ASSERT_TRUE(AdmGetPath(b.data(), b.size(), type,
                         {PathStep::Field("user"), PathStep::Field("tags"),
                          PathStep::Index(9)},
                         &v)
                  .ok());
  EXPECT_EQ(v.tag(), AdmTag::kMissing);
}

TEST(AdmGetPath, DeclaredFieldAccess) {
  DatasetType type = ClosedEmployeeType();
  AdmValue rec = R(R"({"id": 7, "name": "Zed",
                      "dependents": {{ {"name": "Kid", "age": 1} }} })");
  Buffer b;
  ASSERT_TRUE(EncodeAdmRecord(rec, type, &b).ok());
  AdmValue v;
  ASSERT_TRUE(AdmGetPath(b.data(), b.size(), type, {PathStep::Field("name")}, &v).ok());
  EXPECT_EQ(v.string_value(), "Zed");
  ASSERT_TRUE(AdmGetPath(b.data(), b.size(), type,
                         {PathStep::Field("dependents"), PathStep::Index(0),
                          PathStep::Field("age")},
                         &v)
                  .ok());
  EXPECT_EQ(v.int_value(), 1);
}

TEST(AdmFormat, DecodeRejectsTruncation) {
  DatasetType type = PkType();
  Buffer b;
  ASSERT_TRUE(EncodeAdmRecord(R(R"({"id": 1, "s": "hello"})"), type, &b).ok());
  AdmValue out;
  EXPECT_FALSE(DecodeAdmRecord(b.data(), b.size() / 2, type, &out).ok());
}

}  // namespace
}  // namespace tc
