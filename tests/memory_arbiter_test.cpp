// MemoryArbiter: victim-selection properties (stub registrations), the
// live/sealed accounting protocol, split adaptation, and the multi-tree
// budget-respected invariant under concurrent ingest (the TSan stress for
// cross-tree victim dispatch through LsmTree::TryArbiterFlush).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/memory_arbiter.h"
#include "common/rng.h"
#include "lsm/lsm_tree.h"
#include "storage/buffer_cache.h"

namespace tc {
namespace {

MemoryArbiter::Options BigBudget() {
  // Large enough that OnPostWrite never crosses the write share: tests can
  // set live sizes freely and probe SuggestFlushVictim without dispatches.
  MemoryArbiter::Options o;
  o.total_budget_bytes = 1ull << 30;
  o.write_pct = 50;
  o.adaptive = false;
  return o;
}

TEST(MemoryArbiter, VictimIsAlwaysAMaximalEligibleLiveGeneration) {
  MemoryArbiter arb(BigBudget());
  constexpr size_t kTrees = 6;
  std::vector<MemoryArbiter::Registration*> regs;
  std::vector<size_t> floors = {1, 512, 4096, 1, 16384, 2048};
  for (size_t i = 0; i < kTrees; ++i) {
    regs.push_back(arb.Register("t" + std::to_string(i), floors[i],
                                [] { return true; }));
  }
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    std::vector<size_t> live(kTrees);
    for (size_t i = 0; i < kTrees; ++i) {
      live[i] = rng.Uniform(64 * 1024);
      EXPECT_FALSE(arb.OnPostWrite(regs[i], live[i]));
    }
    // Expected: the largest live generation among trees clearing their floor
    // (first wins ties, matching the arbiter's strict comparison).
    MemoryArbiter::Registration* expected = nullptr;
    for (size_t i = 0; i < kTrees; ++i) {
      if (live[i] < std::max<size_t>(1, floors[i])) continue;
      if (expected == nullptr || live[i] > expected->live()) expected = regs[i];
    }
    MemoryArbiter::Registration* got = arb.SuggestFlushVictim();
    EXPECT_EQ(got, expected) << "round " << round;
    if (got != nullptr) {
      // The property the ISSUE names: no eligible tree holds MORE live bytes
      // than the chosen victim.
      for (size_t i = 0; i < kTrees; ++i) {
        if (live[i] >= std::max<size_t>(1, floors[i])) {
          EXPECT_LE(live[i], got->live());
        }
      }
    }
  }
  for (auto* r : regs) arb.Unregister(r);
}

TEST(MemoryArbiter, ColdestPolicyPicksLeastRecentlyWrittenTree) {
  MemoryArbiter::Options o = BigBudget();
  o.victim = MemoryArbiter::VictimPolicy::kColdest;
  MemoryArbiter arb(o);
  auto* a = arb.Register("a", 1, [] { return true; });
  auto* b = arb.Register("b", 1, [] { return true; });
  auto* c = arb.Register("c", 1, [] { return true; });
  EXPECT_FALSE(arb.OnPostWrite(a, 1024));
  EXPECT_FALSE(arb.OnPostWrite(b, 8192));
  EXPECT_FALSE(arb.OnPostWrite(c, 4096));
  // a wrote longest ago — coldest wins regardless of size.
  EXPECT_EQ(arb.SuggestFlushVictim(), a);
  EXPECT_FALSE(arb.OnPostWrite(a, 1025));
  EXPECT_EQ(arb.SuggestFlushVictim(), b);
  arb.Unregister(a);
  arb.Unregister(b);
  arb.Unregister(c);
}

TEST(MemoryArbiter, SelfVictimAndCrossTreeDispatch) {
  MemoryArbiter::Options o;
  o.total_budget_bytes = 100 * 1024;
  o.write_pct = 50;  // share = 51200
  o.adaptive = false;
  MemoryArbiter arb(o);
  MemoryArbiter::Registration* a = nullptr;
  int a_flushes = 0;
  a = arb.Register("a", 1, [&] {
    // A real flush_fn seals the generation before returning true.
    arb.OnSeal(a, a->live());
    ++a_flushes;
    return true;
  });
  auto* b = arb.Register("b", 1, [] { return true; });

  // Caller == victim: OnPostWrite tells the caller to flush itself.
  EXPECT_TRUE(arb.OnPostWrite(a, 60 * 1024));
  EXPECT_EQ(a_flushes, 0);
  EXPECT_EQ(arb.stats().self_flushes_triggered, 1u);

  // Caller != victim: the victim's flush_fn runs on the calling thread.
  EXPECT_FALSE(arb.OnPostWrite(b, 2 * 1024));
  EXPECT_EQ(a_flushes, 1);
  MemoryArbiter::Stats s = arb.stats();
  EXPECT_EQ(s.global_flushes_triggered, 1u);
  EXPECT_EQ(s.write_bytes_live, 2 * 1024u);      // b only; a sealed
  EXPECT_EQ(s.write_bytes_sealed, 60 * 1024u);   // a, awaiting install

  // Install releases the sealed accounting.
  arb.OnFlushInstalled(a, 60 * 1024, 12 * 1024);
  s = arb.stats();
  EXPECT_EQ(s.write_bytes_sealed, 0u);
  EXPECT_EQ(s.flushes_installed, 1u);

  arb.Unregister(a);
  arb.Unregister(b);
}

TEST(MemoryArbiter, SkippedVictimStaysACandidate) {
  MemoryArbiter::Options o;
  o.total_budget_bytes = 100 * 1024;
  o.write_pct = 50;
  o.adaptive = false;
  MemoryArbiter arb(o);
  auto* a = arb.Register("a", 1, [] { return false; });  // always busy
  auto* b = arb.Register("b", 1, [] { return true; });
  EXPECT_FALSE(arb.OnPostWrite(a, 40 * 1024));  // under share: no dispatch
  EXPECT_FALSE(arb.OnPostWrite(b, 12 * 1024));  // over: dispatch to a, skipped
  EXPECT_EQ(arb.stats().victim_skips, 1u);
  // Still over budget and a still the largest: re-selected on the next write.
  EXPECT_FALSE(arb.OnPostWrite(b, 13 * 1024));
  EXPECT_EQ(arb.stats().victim_skips, 2u);
  arb.Unregister(a);
  arb.Unregister(b);
}

TEST(MemoryArbiter, AdaptGrowsWriteShareOnTinyFlushesAndIdleCache) {
  const size_t kPage = 4096;
  BufferCache cache(kPage, 1024);
  MemoryArbiter::Options o;
  o.total_budget_bytes = 1 << 20;
  o.write_pct = 50;
  o.adaptive = true;
  o.adapt_interval_flushes = 2;
  o.cache = &cache;
  MemoryArbiter arb(o);
  // The ctor applied the initial split to the cache: 512 KiB / 4 KiB pages.
  EXPECT_EQ(cache.capacity_pages(), 128u);
  auto* a = arb.Register("a", 1, [] { return true; });
  // Two tiny installed flushes, zero cache traffic: write memory is starved,
  // the split shifts toward it and the cache shrinks.
  arb.OnFlushInstalled(a, 1024, 1024);
  arb.OnFlushInstalled(a, 1024, 1024);
  MemoryArbiter::Stats s = arb.stats();
  EXPECT_EQ(s.write_pct, 55);
  EXPECT_EQ(s.adapt_shifts, 1u);
  EXPECT_LT(cache.capacity_pages(), 128u);
  EXPECT_GE(s.split_history.size(), 2u);  // initial split + the shift
  arb.Unregister(a);
}

TEST(MemoryArbiter, AdaptShrinksWriteShareWhenMissRateClimbs) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "adapt", kPage, nullptr).ValueOrDie();
  Buffer page(kPage);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());

  BufferCache cache(kPage, 1024);
  MemoryArbiter::Options o;
  o.total_budget_bytes = 1 << 20;
  o.write_pct = 50;
  o.adaptive = true;
  o.adapt_interval_flushes = 2;
  o.cache = &cache;
  MemoryArbiter arb(o);
  size_t before = cache.capacity_pages();
  auto* a = arb.Register("a", 1, [] { return true; });
  // A working set larger than the cache: every access misses.
  for (uint32_t i = 0; i < 100; ++i) (void)cache.GetPage(pf.get(), i).ValueOrDie();
  // Healthy flush sizes (>= half the static per-tree share), so the only
  // signal firing is the miss rate — the split shifts toward the cache.
  size_t share = arb.write_share_bytes();
  arb.OnFlushInstalled(a, share, share);
  arb.OnFlushInstalled(a, share, share);
  MemoryArbiter::Stats s = arb.stats();
  EXPECT_EQ(s.write_pct, 45);
  EXPECT_GT(cache.capacity_pages(), before);
  arb.Unregister(a);
}

// --- Multi-tree arbitration over real LSM trees ----------------------------

struct ArbiterTreesFixture {
  std::shared_ptr<FileSystem> fs = MakeMemFileSystem();
  BufferCache cache{4096, 2048};

  std::unique_ptr<LsmTree> Open(MemoryArbiter* arb, const std::string& name,
                                TaskPool* pool = nullptr) {
    LsmTreeOptions o;
    o.fs = fs;
    o.cache = &cache;
    o.dir = "lsm";
    o.name = name;
    o.page_size = 4096;
    o.merge_policy = MakeNoMergePolicy();
    o.use_wal = false;
    o.merge_pool = pool;
    o.arbiter = arb;
    o.arbiter_floor_bytes = 1024;
    return LsmTree::Open(std::move(o)).ValueOrDie();
  }
};

TEST(MemoryArbiter, MultiTreeBudgetRespectedUnderConcurrentIngest) {
  MemoryArbiter::Options o;
  o.total_budget_bytes = 256 * 1024;
  o.write_pct = 50;  // share = 128 KiB
  o.adaptive = false;
  MemoryArbiter arb(o);
  const size_t share = arb.write_share_bytes();

  ArbiterTreesFixture fx;
  constexpr size_t kTrees = 4;
  std::vector<std::unique_ptr<LsmTree>> trees;
  for (size_t i = 0; i < kTrees; ++i) {
    trees.push_back(fx.Open(&arb, "t" + std::to_string(i)));
  }

  // Inline flushes (no pool): the enforced bound is the arbiter's hard
  // ceiling — live memory under 2x the share (a skipped dispatch past that
  // makes the caller drain itself), plus slack for floors and records in
  // flight. Sealed bytes are transient here (a generation mid-build, drained
  // synchronously), so live + sealed gets extra headroom.
  constexpr uint64_t kWrites = 3000;
  std::atomic<bool> done{false};
  std::atomic<bool> violated{false};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      MemoryArbiter::Stats s = arb.stats();
      if (s.write_bytes_live > 2 * share + 64 * 1024 ||
          s.write_bytes_live + s.write_bytes_sealed > 4 * share + 64 * 1024) {
        violated.store(true, std::memory_order_release);
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  std::vector<Status> statuses(kTrees, Status::OK());
  for (size_t t = 0; t < kTrees; ++t) {
    writers.emplace_back([&, t] {
      std::string payload(48, static_cast<char>('a' + t));
      for (uint64_t i = 0; i < kWrites && statuses[t].ok(); ++i) {
        statuses[t] =
            trees[t]->Insert(BtreeKey{static_cast<int64_t>(i), 0}, payload);
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  for (const Status& st : statuses) ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(violated.load());

  MemoryArbiter::Stats s = arb.stats();
  EXPECT_GT(s.global_flushes_triggered + s.self_flushes_triggered, 0u);
  for (auto& t : trees) ASSERT_TRUE(t->Flush().ok());
  s = arb.stats();
  EXPECT_EQ(s.write_bytes_live + s.write_bytes_sealed, 0u);

  // Nothing lost through cross-tree flushes: spot-check every tree.
  for (size_t t = 0; t < kTrees; ++t) {
    for (int64_t k : {int64_t{0}, int64_t{1500}, int64_t{2999}}) {
      EXPECT_TRUE(trees[t]->Get(BtreeKey{k, 0}).ValueOrDie().has_value());
    }
  }
  trees.clear();  // unregister before the arbiter dies
}

TEST(MemoryArbiter, PooledFlushBuildsComposeWithGlobalVictims) {
  MemoryArbiter::Options o;
  o.total_budget_bytes = 128 * 1024;
  o.write_pct = 50;
  o.adaptive = false;
  MemoryArbiter arb(o);

  TaskPool pool(2);
  ArbiterTreesFixture fx;
  constexpr size_t kTrees = 3;
  std::vector<std::unique_ptr<LsmTree>> trees;
  for (size_t i = 0; i < kTrees; ++i) {
    trees.push_back(fx.Open(&arb, "p" + std::to_string(i), &pool));
  }
  constexpr uint64_t kWrites = 2000;
  std::vector<std::thread> writers;
  std::vector<Status> statuses(kTrees, Status::OK());
  for (size_t t = 0; t < kTrees; ++t) {
    writers.emplace_back([&, t] {
      std::string payload(40, static_cast<char>('p' + t));
      for (uint64_t i = 0; i < kWrites && statuses[t].ok(); ++i) {
        statuses[t] =
            trees[t]->Insert(BtreeKey{static_cast<int64_t>(i), 0}, payload);
      }
    });
  }
  for (auto& w : writers) w.join();
  for (const Status& st : statuses) ASSERT_TRUE(st.ok()) << st.ToString();
  for (auto& t : trees) {
    ASSERT_TRUE(t->Flush().ok());
    ASSERT_TRUE(t->WaitForMerges().ok());
  }
  MemoryArbiter::Stats s = arb.stats();
  EXPECT_EQ(s.write_bytes_live + s.write_bytes_sealed, 0u);
  // Every record survived the arbitrated flush pipeline.
  for (size_t t = 0; t < kTrees; ++t) {
    uint64_t n = 0;
    LsmTree::Iterator it(trees[t].get());
    ASSERT_TRUE(it.SeekToFirst().ok());
    while (it.Valid()) {
      ++n;
      ASSERT_TRUE(it.Next().ok());
    }
    EXPECT_EQ(n, kWrites);
  }
  trees.clear();
}

// --- Flush-free traffic adaptation (MaybeAdaptFromTraffic) -----------------

TEST(MemoryArbiter, TrafficTickShiftsTowardCacheOnMissStorm) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "adapt", kPage, nullptr).ValueOrDie();
  Buffer page(kPage);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());

  BufferCache cache(kPage, 1024);
  MemoryArbiter::Options o;
  o.total_budget_bytes = 1 << 20;
  o.write_pct = 50;
  o.adaptive = true;
  o.traffic_adapt_interval_ms = 0;  // no time gate: deltas alone decide
  o.cache = &cache;
  MemoryArbiter arb(o);
  size_t before = cache.capacity_pages();

  // Query-only workload, no flushes at all: 100 cold reads are 100 misses,
  // the miss share trips the shift-toward-cache signal.
  for (uint32_t i = 0; i < 100; ++i) (void)cache.GetPage(pf.get(), i).ValueOrDie();
  arb.MaybeAdaptFromTraffic();
  MemoryArbiter::Stats s = arb.stats();
  EXPECT_EQ(s.traffic_adapt_ticks, 1u);
  EXPECT_EQ(s.write_pct, 45);
  EXPECT_GT(cache.capacity_pages(), before);

  // No new traffic: below the signal floor, no decision, no tick consumed.
  arb.MaybeAdaptFromTraffic();
  s = arb.stats();
  EXPECT_EQ(s.traffic_adapt_ticks, 1u);
  EXPECT_EQ(s.write_pct, 45);
}

TEST(MemoryArbiter, TrafficTickLeavesSplitAloneWhenHitsDominate) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "adapt2", kPage, nullptr).ValueOrDie();
  Buffer page(kPage);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());

  BufferCache cache(kPage, 1024);
  MemoryArbiter::Options o;
  o.total_budget_bytes = 1 << 20;
  o.write_pct = 50;
  o.adaptive = true;
  o.traffic_adapt_interval_ms = 0;
  o.cache = &cache;
  MemoryArbiter arb(o);

  // 8 cold misses then 92 hits on the resident pages: miss share 8% is far
  // below the 40% shift threshold.
  for (int round = 0; round < 100; ++round) {
    (void)cache.GetPage(pf.get(), round % 8).ValueOrDie();
  }
  arb.MaybeAdaptFromTraffic();
  MemoryArbiter::Stats s = arb.stats();
  EXPECT_EQ(s.traffic_adapt_ticks, 1u);  // decided, but no shift warranted
  EXPECT_EQ(s.write_pct, 50);
  EXPECT_EQ(s.adapt_shifts, 0u);
}

TEST(MemoryArbiter, TrafficTickIsTimeGated) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "adapt3", kPage, nullptr).ValueOrDie();
  Buffer page(kPage);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());

  BufferCache cache(kPage, 1024);
  MemoryArbiter::Options o;
  o.total_budget_bytes = 1 << 20;
  o.write_pct = 50;
  o.adaptive = true;
  o.traffic_adapt_interval_ms = 60 * 1000;  // far beyond the test's runtime
  o.cache = &cache;
  MemoryArbiter arb(o);

  for (uint32_t i = 0; i < 100; ++i) (void)cache.GetPage(pf.get(), i).ValueOrDie();
  arb.MaybeAdaptFromTraffic();
  EXPECT_EQ(arb.stats().traffic_adapt_ticks, 1u);
  // Another miss storm inside the window: gated, regardless of traffic.
  for (uint32_t i = 0; i < 100; ++i) (void)cache.GetPage(pf.get(), i).ValueOrDie();
  arb.MaybeAdaptFromTraffic();
  EXPECT_EQ(arb.stats().traffic_adapt_ticks, 1u);
  EXPECT_EQ(arb.stats().write_pct, 45);  // only the first tick shifted
}

// --- Query scratch charging (TryChargeQuery / ReleaseQuery) ----------------

TEST(MemoryArbiter, QueryChargesBoundedByReadShare) {
  MemoryArbiter::Options o;
  o.total_budget_bytes = 100 * 1024;
  o.write_pct = 60;  // read share = 40 KiB
  o.adaptive = false;
  MemoryArbiter arb(o);
  ASSERT_EQ(arb.read_share_bytes(), 40 * 1024u);

  EXPECT_TRUE(arb.TryChargeQuery(30 * 1024));
  EXPECT_EQ(arb.stats().query_bytes_charged, 30 * 1024u);
  // 30 + 20 > 40: denied and counted, charge unchanged.
  EXPECT_FALSE(arb.TryChargeQuery(20 * 1024));
  EXPECT_EQ(arb.stats().query_bytes_charged, 30 * 1024u);
  EXPECT_EQ(arb.stats().query_charge_denials, 1u);
  // Exactly to the cap is fine.
  EXPECT_TRUE(arb.TryChargeQuery(10 * 1024));
  EXPECT_FALSE(arb.TryChargeQuery(1));
  EXPECT_EQ(arb.stats().query_charge_denials, 2u);

  arb.ReleaseQuery(20 * 1024);
  EXPECT_EQ(arb.stats().query_bytes_charged, 20 * 1024u);
  EXPECT_TRUE(arb.TryChargeQuery(20 * 1024));
  // Saturating release: over-release clamps to zero instead of wrapping.
  arb.ReleaseQuery(1 << 30);
  EXPECT_EQ(arb.stats().query_bytes_charged, 0u);
  EXPECT_TRUE(arb.TryChargeQuery(40 * 1024));
}

// Flush-build / merge-rewrite scratch always admits (denial would wedge the
// write path) but occupies the read share, shrinking what query scratch can
// take while a build runs.
TEST(MemoryArbiter, BackgroundChargesAlwaysAdmitButShrinkQueryAdmission) {
  MemoryArbiter::Options o;
  o.total_budget_bytes = 100 * 1024;
  o.write_pct = 60;  // read share = 40 KiB
  o.adaptive = false;
  MemoryArbiter arb(o);

  // A background charge larger than the whole read share still admits.
  arb.ChargeBackground(50 * 1024);
  EXPECT_EQ(arb.stats().background_bytes_charged, 50 * 1024u);
  EXPECT_EQ(arb.stats().background_charges, 1u);
  // ...but queries now see zero headroom.
  EXPECT_FALSE(arb.TryChargeQuery(1));
  EXPECT_EQ(arb.stats().query_charge_denials, 1u);

  arb.ReleaseBackground(50 * 1024);
  EXPECT_EQ(arb.stats().background_bytes_charged, 0u);

  // Partial occupancy: build scratch and query scratch share the 40 KiB.
  arb.ChargeBackground(25 * 1024);
  EXPECT_FALSE(arb.TryChargeQuery(20 * 1024));  // 25 + 20 > 40
  EXPECT_TRUE(arb.TryChargeQuery(15 * 1024));   // exactly to the cap
  EXPECT_FALSE(arb.TryChargeQuery(1));
  arb.ReleaseBackground(10 * 1024);
  EXPECT_TRUE(arb.TryChargeQuery(10 * 1024));

  // Saturating release: over-release clamps to zero instead of wrapping.
  arb.ReleaseBackground(1 << 30);
  EXPECT_EQ(arb.stats().background_bytes_charged, 0u);
}

// An LSM tree attached to an arbiter charges its component-build scratch
// while the build runs and releases it at install: observable as a nonzero
// background_charges count after a flush, with no residual charged bytes.
TEST(MemoryArbiter, TreeBuildsChargeBackgroundScratch) {
  MemoryArbiter::Options o;
  o.total_budget_bytes = 4 << 20;
  o.adaptive = false;
  MemoryArbiter arb(o);
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    LsmTreeOptions t;
    t.fs = fs;
    t.cache = &cache;
    t.dir = "arb";
    t.name = "t";
    t.page_size = 4096;
    t.memtable_budget_bytes = 1 << 20;
    t.merge_policy = MakeConstantMergePolicy(1);
    t.arbiter = &arb;
    t.wal_sync_every = 0;
    auto tree = LsmTree::Open(std::move(t)).ValueOrDie();
    for (int64_t k = 0; k < 32; ++k) {
      ASSERT_TRUE(tree->Insert(BtreeKey{k, 0}, "vvvv").ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
    for (int64_t k = 32; k < 64; ++k) {
      ASSERT_TRUE(tree->Insert(BtreeKey{k, 0}, "vvvv").ok());
    }
    ASSERT_TRUE(tree->Flush().ok());  // flush build + inline merge rewrite
  }
  MemoryArbiter::Stats s = arb.stats();
  EXPECT_GE(s.background_charges, 3u);  // two flush builds + one merge
  EXPECT_EQ(s.background_bytes_charged, 0u);  // all released at build end
}

}  // namespace
}  // namespace tc
