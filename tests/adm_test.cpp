#include <gtest/gtest.h>

#include "adm/parser.h"
#include "adm/printer.h"
#include "adm/value.h"
#include "tests/test_util.h"

namespace tc {
namespace {

AdmValue MustParse(const std::string& text) {
  auto r = ParseAdm(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
  return std::move(r).value();
}

TEST(AdmParser, Scalars) {
  EXPECT_EQ(MustParse("42").int_value(), 42);
  EXPECT_EQ(MustParse("-17").int_value(), -17);
  EXPECT_DOUBLE_EQ(MustParse("3.5").double_value(), 3.5);
  EXPECT_DOUBLE_EQ(MustParse("-1e3").double_value(), -1000.0);
  EXPECT_TRUE(MustParse("true").bool_value());
  EXPECT_FALSE(MustParse("false").bool_value());
  EXPECT_EQ(MustParse("null").tag(), AdmTag::kNull);
  EXPECT_EQ(MustParse("missing").tag(), AdmTag::kMissing);
  EXPECT_EQ(MustParse("\"hi\"").string_value(), "hi");
}

TEST(AdmParser, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\nd\te")").string_value(), "a\"b\\c\nd\te");
  EXPECT_EQ(MustParse(R"("Aé")").string_value(), "A\xc3\xa9");
}

TEST(AdmParser, Object) {
  AdmValue v = MustParse(R"({"a": 1, "b": "x", "c": {"d": true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.field_count(), 3u);
  EXPECT_EQ(v.FindField("a")->int_value(), 1);
  EXPECT_EQ(v.FindField("c")->FindField("d")->bool_value(), true);
  EXPECT_EQ(v.FindField("zzz"), nullptr);
}

TEST(AdmParser, ArrayAndMultiset) {
  AdmValue arr = MustParse("[1, 2, 3]");
  ASSERT_EQ(arr.tag(), AdmTag::kArray);
  EXPECT_EQ(arr.size(), 3u);
  AdmValue ms = MustParse("{{1, \"two\"}}");
  ASSERT_EQ(ms.tag(), AdmTag::kMultiset);
  EXPECT_EQ(ms.size(), 2u);
  EXPECT_EQ(MustParse("{{}}").size(), 0u);
}

TEST(AdmParser, PaperFigure10Record) {
  // The running example from the paper's Figure 10a.
  AdmValue v = MustParse(R"({
    "id": 1,
    "name": "Ann",
    "dependents": {{
      {"name": "Bob", "age": 6},
      {"name": "Carol", "age": 10} }},
    "employment_date": date("2018-09-20"),
    "branch_location": point(24.0, -56.12),
    "working_shifts": [[8, 16], [9, 17], [10, 18], "on_call"]
  })");
  EXPECT_EQ(v.FindField("dependents")->tag(), AdmTag::kMultiset);
  EXPECT_EQ(v.FindField("dependents")->size(), 2u);
  EXPECT_EQ(v.FindField("employment_date")->tag(), AdmTag::kDate);
  EXPECT_EQ(v.FindField("branch_location")->tag(), AdmTag::kPoint);
  EXPECT_DOUBLE_EQ(v.FindField("branch_location")->point_x(), 24.0);
  EXPECT_DOUBLE_EQ(v.FindField("branch_location")->point_y(), -56.12);
  const AdmValue* shifts = v.FindField("working_shifts");
  ASSERT_EQ(shifts->tag(), AdmTag::kArray);
  EXPECT_EQ(shifts->size(), 4u);
  EXPECT_EQ(shifts->item(0).tag(), AdmTag::kArray);
  EXPECT_EQ(shifts->item(3).tag(), AdmTag::kString);
}

TEST(AdmParser, DateConstructor) {
  AdmValue d = MustParse(R"(date("1970-01-01"))");
  EXPECT_EQ(d.int_value(), 0);
  EXPECT_EQ(MustParse(R"(date("1970-01-02"))").int_value(), 1);
  EXPECT_EQ(MustParse(R"(date("1969-12-31"))").int_value(), -1);
  EXPECT_EQ(MustParse(R"(date("2000-03-01"))").int_value(), 11017);
}

TEST(AdmParser, TimeAndDatetime) {
  EXPECT_EQ(MustParse(R"(time("01:02:03"))").int_value(),
            ((1 * 60 + 2) * 60 + 3) * 1000);
  EXPECT_EQ(MustParse(R"(time("00:00:00.250"))").int_value(), 250);
  EXPECT_EQ(MustParse(R"(datetime("1970-01-01T00:00:01"))").int_value(), 1000);
}

TEST(AdmParser, UuidConstructor) {
  AdmValue u = MustParse(R"(uuid("000102030405060708090a0b0c0d0e0f"))");
  ASSERT_EQ(u.tag(), AdmTag::kUuid);
  EXPECT_EQ(u.string_value().size(), 16u);
  EXPECT_EQ(static_cast<unsigned char>(u.string_value()[15]), 0x0f);
}

TEST(AdmParser, Errors) {
  EXPECT_FALSE(ParseAdm("{").ok());
  EXPECT_FALSE(ParseAdm("[1,]").ok());
  EXPECT_FALSE(ParseAdm("\"unterminated").ok());
  EXPECT_FALSE(ParseAdm("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseAdm("12 34").ok());
  EXPECT_FALSE(ParseAdm("date(\"not-a-date\")").ok());
  EXPECT_FALSE(ParseAdm("uuid(\"short\")").ok());
  EXPECT_FALSE(ParseAdm("").ok());
}

TEST(AdmPrinter, RoundTripBasic) {
  const char* cases[] = {
      "42", "-3.5", "true", "null", "missing", R"("hello")",
      R"({"a": 1, "b": [1, 2, {"c": null}]})",
      "{{1, 2}}", R"(date("2018-09-20"))", "point(24.0, -56.12)",
      R"(datetime("2020-05-11T10:30:00.000"))",
  };
  for (const char* c : cases) {
    AdmValue v = MustParse(c);
    AdmValue again = MustParse(PrintAdm(v));
    EXPECT_EQ(v, again) << c << " -> " << PrintAdm(v);
  }
}

TEST(AdmPrinter, PropertyRandomRoundTrip) {
  Rng rng(123);
  for (int i = 0; i < 300; ++i) {
    AdmValue v = testutil::RandomRecord(&rng, i);
    std::string text = PrintAdm(v);
    auto parsed = ParseAdm(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    // Integer types widen to bigint through text; compare via re-print.
    EXPECT_EQ(PrintAdm(parsed.value()), text);
  }
}

TEST(AdmValue, EqualityAndCounts) {
  AdmValue a = MustParse(R"({"x": [1, 2], "y": {"z": "s"}})");
  AdmValue b = MustParse(R"({"x": [1, 2], "y": {"z": "s"}})");
  AdmValue c = MustParse(R"({"x": [1, 3], "y": {"z": "s"}})");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.CountScalars(), 3u);
  EXPECT_EQ(a.Depth(), 3u);
}

TEST(AdmValue, RemoveField) {
  AdmValue a = MustParse(R"({"x": 1, "y": 2})");
  EXPECT_TRUE(a.RemoveField("x"));
  EXPECT_FALSE(a.RemoveField("x"));
  EXPECT_EQ(a.field_count(), 1u);
  EXPECT_EQ(a.field_name(0), "y");
}

}  // namespace
}  // namespace tc
