#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "storage/buffer_cache.h"
#include "storage/file.h"
#include "storage/laf.h"

namespace tc {
namespace {

TEST(MemFileSystem, BasicOps) {
  auto fs = MakeMemFileSystem();
  EXPECT_FALSE(fs->Exists("a"));
  auto f = fs->Create("a").ValueOrDie();
  uint64_t off = 0;
  ASSERT_TRUE(f->Append(reinterpret_cast<const uint8_t*>("hello"), 5, &off).ok());
  EXPECT_EQ(off, 0u);
  EXPECT_EQ(f->Size(), 5u);
  uint8_t buf[5];
  ASSERT_TRUE(f->Read(0, 5, buf).ok());
  EXPECT_EQ(memcmp(buf, "hello", 5), 0);
  EXPECT_FALSE(f->Read(3, 5, buf).ok());  // past end
  EXPECT_TRUE(fs->Exists("a"));
  ASSERT_TRUE(fs->Delete("a").ok());
  EXPECT_FALSE(fs->Exists("a"));
  EXPECT_FALSE(fs->Open("a").ok());
}

TEST(MemFileSystem, ListWithPrefix) {
  auto fs = MakeMemFileSystem();
  (void)fs->Create("dir/ds.c1.btree").ValueOrDie();
  (void)fs->Create("dir/ds.c2.btree").ValueOrDie();
  (void)fs->Create("dir/other.x").ValueOrDie();
  auto names = fs->List("dir", "ds.").ValueOrDie();
  EXPECT_EQ(names.size(), 2u);
}

TEST(MemFileSystem, ContentsSurviveReopen) {
  auto fs = MakeMemFileSystem();
  {
    auto f = fs->Create("persist").ValueOrDie();
    ASSERT_TRUE(f->Write(0, reinterpret_cast<const uint8_t*>("data"), 4).ok());
  }
  auto f2 = fs->Open("persist").ValueOrDie();
  EXPECT_EQ(f2->Size(), 4u);
}

TEST(PosixFileSystem, BasicOps) {
  auto fs = MakePosixFileSystem();
  std::string dir = ::testing::TempDir() + "/tcdb_storage_test";
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  std::string path = dir + "/f1";
  {
    auto f = fs->Create(path).ValueOrDie();
    ASSERT_TRUE(f->Write(0, reinterpret_cast<const uint8_t*>("abcdef"), 6).ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  EXPECT_TRUE(fs->Exists(path));
  EXPECT_EQ(fs->FileSize(path).ValueOrDie(), 6u);
  {
    auto f = fs->Open(path).ValueOrDie();
    uint8_t buf[3];
    ASSERT_TRUE(f->Read(2, 3, buf).ok());
    EXPECT_EQ(memcmp(buf, "cde", 3), 0);
  }
  ASSERT_TRUE(fs->Delete(path).ok());
}

TEST(Laf, RoundTripAndChecksum) {
  auto fs = MakeMemFileSystem();
  std::vector<LafEntry> entries = {{0, 100}, {100, 57}, {157, 4000}};
  ASSERT_TRUE(
      WriteLaf(fs.get(), "x.laf", entries, CompressionKind::kHeavy).ok());
  auto loaded = LoadLaf(fs.get(), "x.laf").ValueOrDie();
  ASSERT_EQ(loaded.entries.size(), 3u);
  EXPECT_EQ(loaded.entries[1].offset, 100u);
  EXPECT_EQ(loaded.entries[1].length, 57u);
  ASSERT_TRUE(loaded.codec.has_value());
  EXPECT_EQ(*loaded.codec, CompressionKind::kHeavy);
  // Entries are 12 bytes each, exactly as the paper specifies (§2.4); the v2
  // header is magic + codec + count.
  EXPECT_EQ(fs->FileSize("x.laf").ValueOrDie(), 12u + 3 * 12 + 4);

  // Corrupt one byte -> checksum failure.
  auto f = fs->Open("x.laf").ValueOrDie();
  uint8_t b;
  ASSERT_TRUE(f->Read(9, 1, &b).ok());
  b ^= 0xFF;
  ASSERT_TRUE(f->Write(9, &b, 1).ok());
  EXPECT_FALSE(LoadLaf(fs.get(), "x.laf").ok());
}

TEST(Laf, LoadsV1FilesWithoutCodec) {
  // Hand-craft a v1 LAF (magic "TCLA", no codec field) and check it loads
  // with codec reported absent.
  auto fs = MakeMemFileSystem();
  Buffer buf;
  PutFixed32(&buf, 0x54434c41u);  // v1 magic
  PutFixed32(&buf, 2u);           // count
  PutFixed64(&buf, 0);
  PutFixed32(&buf, 100);
  PutFixed64(&buf, 100);
  PutFixed32(&buf, 42);
  PutFixed32(&buf, Crc32c(buf.data(), buf.size()));
  auto f = fs->Create("v1.laf").ValueOrDie();
  ASSERT_TRUE(f->Write(0, buf.data(), buf.size()).ok());
  auto loaded = LoadLaf(fs.get(), "v1.laf").ValueOrDie();
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[1].length, 42u);
  EXPECT_FALSE(loaded.codec.has_value());
}

class PagedFileTest : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(PagedFileTest, WriteReadPages) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto compressor = GetCompressor(GetParam());
  auto pf = PagedFile::Create(fs, "data", kPage, compressor).ValueOrDie();
  Rng rng(11);
  std::vector<Buffer> pages;
  for (int i = 0; i < 20; ++i) {
    Buffer page(kPage);
    // Half-compressible content.
    for (size_t j = 0; j < page.size(); ++j) {
      page[j] = j % 2 == 0 ? static_cast<uint8_t>('A' + (i % 26))
                           : static_cast<uint8_t>(rng.Next());
    }
    ASSERT_TRUE(pf->AppendPage(page.data()).ok());
    pages.push_back(std::move(page));
  }
  ASSERT_TRUE(pf->Finish().ok());
  EXPECT_EQ(pf->page_count(), 20u);

  // Re-open and verify all pages.
  auto rd = PagedFile::Open(fs, "data", kPage, compressor).ValueOrDie();
  EXPECT_EQ(rd->page_count(), 20u);
  Buffer out(kPage);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rd->ReadPage(static_cast<uint32_t>(i), out.data()).ok());
    EXPECT_EQ(out, pages[static_cast<size_t>(i)]) << i;
  }
  EXPECT_FALSE(rd->ReadPage(20, out.data()).ok());
}

TEST_P(PagedFileTest, PhysicalBytesReflectCompression) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "d2", kPage, GetCompressor(GetParam()))
                .ValueOrDie();
  Buffer page(kPage, 'z');  // highly compressible
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());
  if (GetParam() != CompressionKind::kNone) {
    EXPECT_LT(pf->physical_bytes(), 8 * kPage / 4);
  } else {
    EXPECT_EQ(pf->physical_bytes(), 8 * kPage);
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, PagedFileTest,
                         ::testing::Values(CompressionKind::kNone,
                                           CompressionKind::kSnappy,
                                           CompressionKind::kHeavy),
                         [](const auto& info) {
                           return std::string(CompressionKindName(info.param)) ==
                                          "snappy"
                                      ? "Snappy"
                                      : info.param == CompressionKind::kNone
                                            ? "None"
                                            : "Heavy";
                         });

TEST(PagedFile, SelfDescribingOpenIgnoresCallerCodec) {
  // A component written with the heavy codec must be readable by a reader
  // configured with ANY codec (or none): the LAF v2 sidecar names the codec.
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "sd", kPage,
                              GetCompressor(CompressionKind::kHeavy))
                .ValueOrDie();
  Buffer page(kPage);
  for (size_t j = 0; j < page.size(); ++j) page[j] = static_cast<uint8_t>(j % 97);
  ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());

  for (CompressionKind reader_kind :
       {CompressionKind::kNone, CompressionKind::kSnappy,
        CompressionKind::kHeavy}) {
    auto rd =
        PagedFile::Open(fs, "sd", kPage, GetCompressor(reader_kind)).ValueOrDie();
    EXPECT_EQ(rd->compression(), CompressionKind::kHeavy);
    Buffer out(kPage);
    ASSERT_TRUE(rd->ReadPage(0, out.data()).ok());
    EXPECT_EQ(out, page);
  }
  // And a nullptr compressor works too.
  auto rd = PagedFile::Open(fs, "sd", kPage, nullptr).ValueOrDie();
  EXPECT_EQ(rd->compression(), CompressionKind::kHeavy);
}

TEST(PagedFile, OpenWithoutLafIsUncompressedEvenIfCallerCompresses) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "plain", kPage, nullptr).ValueOrDie();
  Buffer page(kPage, 3);
  ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());
  // Reader passes snappy, but there is no LAF: the file must open uncompressed.
  auto rd = PagedFile::Open(fs, "plain", kPage,
                            GetCompressor(CompressionKind::kSnappy))
                .ValueOrDie();
  EXPECT_FALSE(rd->compressed());
  Buffer out(kPage);
  ASSERT_TRUE(rd->ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST(BufferCache, HitsMissesAndEviction) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "c", kPage, nullptr).ValueOrDie();
  Buffer page(kPage);
  for (int i = 0; i < 10; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  }
  ASSERT_TRUE(pf->Finish().ok());

  BufferCache cache(kPage, /*capacity=*/4);
  for (uint32_t i = 0; i < 10; ++i) {
    auto p = cache.GetPage(pf.get(), i).ValueOrDie();
    EXPECT_EQ((*p)[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(cache.misses(), 10u);
  EXPECT_EQ(cache.hits(), 0u);
  // Last 4 pages are cached.
  for (uint32_t i = 6; i < 10; ++i) (void)cache.GetPage(pf.get(), i).ValueOrDie();
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(cache.misses(), 10u);
  // An evicted page misses again.
  (void)cache.GetPage(pf.get(), 0).ValueOrDie();
  EXPECT_EQ(cache.misses(), 11u);
}

TEST(BufferCache, EvictedPageStillUsableByHolder) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "pin", kPage, nullptr).ValueOrDie();
  Buffer page(kPage, 7);
  ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  Buffer other(kPage, 9);
  ASSERT_TRUE(pf->AppendPage(other.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());
  BufferCache cache(kPage, 1);
  auto held = cache.GetPage(pf.get(), 0).ValueOrDie();
  (void)cache.GetPage(pf.get(), 1).ValueOrDie();  // evicts page 0
  EXPECT_EQ((*held)[100], 7);                     // shared ownership keeps it alive
}

TEST(BufferCache, InvalidateFile) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "inv", kPage, nullptr).ValueOrDie();
  Buffer page(kPage, 1);
  ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());
  BufferCache cache(kPage, 8);
  (void)cache.GetPage(pf.get(), 0).ValueOrDie();
  cache.InvalidateFile(pf->file_id());
  (void)cache.GetPage(pf.get(), 0).ValueOrDie();
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(BufferCache, SetCapacityShrinkEvictsLruTailButNotPinned) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "cap", kPage, nullptr).ValueOrDie();
  Buffer page(kPage);
  for (int i = 0; i < 8; ++i) {
    page[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  }
  ASSERT_TRUE(pf->Finish().ok());

  BufferCache cache(kPage, 8);
  // Two pinned pages (outside the LRU budget), six plain entries.
  auto pin0 = cache.GetPinnedPage(pf.get(), 0).ValueOrDie();
  auto pin1 = cache.GetPinnedPage(pf.get(), 1).ValueOrDie();
  for (uint32_t i = 2; i < 8; ++i) (void)cache.GetPage(pf.get(), i).ValueOrDie();
  EXPECT_EQ(cache.misses(), 8u);
  EXPECT_EQ(cache.capacity_pages(), 8u);

  cache.SetCapacity(2);
  EXPECT_EQ(cache.capacity_pages(), 2u);
  EXPECT_EQ(cache.pinned_pages(), 2u);
  uint64_t misses = cache.misses();
  // Pinned entries survive the shrink without a re-read...
  EXPECT_EQ((*cache.GetPinnedPage(pf.get(), 0).ValueOrDie())[0], 0);
  EXPECT_EQ((*cache.GetPinnedPage(pf.get(), 1).ValueOrDie())[0], 1);
  // ...as do the two most-recently-used plain pages.
  (void)cache.GetPage(pf.get(), 6).ValueOrDie();
  (void)cache.GetPage(pf.get(), 7).ValueOrDie();
  EXPECT_EQ(cache.misses(), misses);
  // The LRU tail was evicted by the shrink.
  (void)cache.GetPage(pf.get(), 2).ValueOrDie();
  EXPECT_EQ(cache.misses(), misses + 1);
}

TEST(BufferCache, SetCapacityGrowAdmitsMorePages) {
  auto fs = MakeMemFileSystem();
  const size_t kPage = 4096;
  auto pf = PagedFile::Create(fs, "grow", kPage, nullptr).ValueOrDie();
  Buffer page(kPage);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(pf->AppendPage(page.data()).ok());
  ASSERT_TRUE(pf->Finish().ok());

  BufferCache cache(kPage, 2);
  for (uint32_t i = 0; i < 6; ++i) (void)cache.GetPage(pf.get(), i).ValueOrDie();
  EXPECT_EQ(cache.misses(), 6u);  // capacity 2: the first four evicted

  cache.SetCapacity(6);
  EXPECT_EQ(cache.capacity_pages(), 6u);
  for (uint32_t i = 0; i < 6; ++i) (void)cache.GetPage(pf.get(), i).ValueOrDie();
  // Pages 4 and 5 were still resident; 0-3 miss once, then everything fits.
  EXPECT_EQ(cache.misses(), 10u);
  uint64_t misses = cache.misses();
  for (uint32_t i = 0; i < 6; ++i) (void)cache.GetPage(pf.get(), i).ValueOrDie();
  EXPECT_EQ(cache.misses(), misses);
}

TEST(DeviceModel, CountsBytes) {
  DeviceModel dev(DeviceProfile::Unthrottled());
  dev.OnRead(100);
  dev.OnWrite(50);
  dev.OnRead(1);
  EXPECT_EQ(dev.bytes_read(), 101u);
  EXPECT_EQ(dev.bytes_written(), 50u);
  dev.ResetCounters();
  EXPECT_EQ(dev.bytes_read(), 0u);
}

TEST(DeviceModel, ProfilesReflectPaperBandwidths) {
  // NVMe reads ~6x faster than SATA (3400 vs 550 MB/s), whatever the slowdown.
  DeviceProfile sata = DeviceProfile::SataSsd();
  DeviceProfile nvme = DeviceProfile::NvmeSsd();
  EXPECT_NEAR(nvme.read_mbps / sata.read_mbps, 3400.0 / 550.0, 0.01);
  EXPECT_NEAR(nvme.write_mbps / sata.write_mbps, 2500.0 / 520.0, 0.01);
}

}  // namespace
}  // namespace tc
