#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/task_pool.h"
#include "lsm/lsm_tree.h"
#include "schema/schema_io.h"
#include "tests/test_util.h"

namespace tc {
namespace {

std::string S(const Buffer& b) { return std::string(b.begin(), b.end()); }

LsmTreeOptions BaseOptions(std::shared_ptr<FileSystem> fs, BufferCache* cache) {
  LsmTreeOptions o;
  o.fs = std::move(fs);
  o.cache = cache;
  o.dir = "rec";
  o.name = "t";
  o.page_size = 4096;
  o.memtable_budget_bytes = 1 << 20;
  o.wal_sync_every = 1;
  return o;
}

TEST(Recovery, WalReplayRestoresAndFlushesMemtable) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "survives").ok());
    ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "also").ok());
    // "Crash": drop the tree without flushing. The WAL holds both records.
  }
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  // Paper §3.1.2: recovery replays the log and flushes the restored memtable.
  EXPECT_EQ(t->component_count(), 1u);
  EXPECT_TRUE(t->View().memtable().empty());
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "survives");
  EXPECT_EQ(S(*t->Get(BtreeKey{2, 0}).ValueOrDie()), "also");
}

TEST(Recovery, InvalidComponentRemoved) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "v1").ok());
    ASSERT_TRUE(t->Flush().ok());
  }
  // Simulate a crash mid-flush: a finished-but-unvalidated component file.
  {
    auto b = BtreeComponentBuilder::Create(fs, "rec/t.c00000099-00000099.btree",
                                           4096, nullptr)
                 .ValueOrDie();
    ASSERT_TRUE(b->Add(BtreeKey{9, 0}, false, "half-flushed").ok());
    ASSERT_TRUE(b->Finish(99, 99, {}).ok());
    // No MarkValid: validity bit unset.
  }
  ASSERT_TRUE(fs->Exists("rec/t.c00000099-00000099.btree"));
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  // The INVALID component was discarded and deleted (§3.1.2).
  EXPECT_FALSE(fs->Exists("rec/t.c00000099-00000099.btree"));
  EXPECT_EQ(t->component_count(), 1u);
  EXPECT_FALSE(t->Get(BtreeKey{9, 0}).ValueOrDie().has_value());
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "v1");
}

TEST(Recovery, MergedComponentSupersedesInputsAfterCrash) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  std::string merged_path;
  {
    auto opts = BaseOptions(fs, &cache);
    opts.merge_policy = MakeNoMergePolicy();
    auto t = LsmTree::Open(std::move(opts)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "a").ok());
    ASSERT_TRUE(t->Flush().ok());
    ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "b").ok());
    ASSERT_TRUE(t->Flush().ok());
  }
  // Hand-craft a VALID merged component [1,2] while the originals still
  // exist — the state right after a merge completes but before the merge
  // inputs are deleted.
  {
    auto b = BtreeComponentBuilder::Create(fs, "rec/t.c00000001-00000002.btree",
                                           4096, nullptr)
                 .ValueOrDie();
    ASSERT_TRUE(b->Add(BtreeKey{1, 0}, false, "a").ok());
    ASSERT_TRUE(b->Add(BtreeKey{2, 0}, false, "b").ok());
    ASSERT_TRUE(b->Finish(1, 2, {}).ok());
    ASSERT_TRUE(b->MarkValid().ok());
  }
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  // Only the merged component survives; contained inputs were dropped.
  auto view = t->View();
  ASSERT_EQ(view.component_count(), 1u);
  EXPECT_EQ(view.components()[0]->meta().cid_min, 1u);
  EXPECT_EQ(view.components()[0]->meta().cid_max, 2u);
  EXPECT_FALSE(fs->Exists("rec/t.c00000001-00000001.btree"));
  EXPECT_FALSE(fs->Exists("rec/t.c00000002-00000002.btree"));
  EXPECT_EQ(S(*t->Get(BtreeKey{2, 0}).ValueOrDie()), "b");
}

TEST(Recovery, NextComponentIdContinuesAfterRestart) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "x").ok());
    ASSERT_TRUE(t->Flush().ok());  // C1
  }
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "y").ok());
  ASSERT_TRUE(t->Flush().ok());  // must become C2, not clash with C1
  auto view = t->View();
  ASSERT_EQ(view.component_count(), 2u);
  EXPECT_EQ(view.components()[0]->meta().cid_min, 2u);
  EXPECT_EQ(view.components()[1]->meta().cid_min, 1u);
}

TEST(Recovery, DeletesReplayedFromWal) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "doomed").ok());
    ASSERT_TRUE(t->Flush().ok());
    ASSERT_TRUE(t->Delete(BtreeKey{1, 0}, nullptr).ok());
    // Crash before the delete flushes.
  }
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  EXPECT_FALSE(t->Get(BtreeKey{1, 0}).ValueOrDie().has_value());
}

// Pooled flush builds rotate the WAL into per-generation segments; a crash
// (or teardown that cancels queued builds) leaves rotated segments on disk,
// and the next Open must replay every segment in order — the sealed
// generations whose builds never installed, plus the live generation's tail.
TEST(Recovery, WalSegmentsFromPendingFlushBuildsReplayInOrder) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    TaskPool pool(1);
    // Occupy the single worker so the flush builds stay QUEUED; destroying
    // the tree then cancels them, leaving only the WAL segments behind.
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::seconds(30), [&] { return release; });
    });
    auto opts = BaseOptions(fs, &cache);
    opts.merge_pool = &pool;
    auto t = LsmTree::Open(std::move(opts)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "gen1.v1").ok());
    ASSERT_TRUE(t->Flush().ok());  // sealed; build queued behind the blocker
    ASSERT_TRUE(t->Upsert(BtreeKey{1, 0}, "gen2", nullptr).ok());
    ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "gen2").ok());
    ASSERT_TRUE(t->Flush().ok());  // second sealed generation
    ASSERT_TRUE(t->Insert(BtreeKey{3, 0}, "live-tail").ok());
    // The rotated segments exist alongside the live one.
    auto segs = fs->List("rec", "t.wal").ValueOrDie();
    EXPECT_GE(segs.size(), 3u);
    // Teardown on a helper thread (it blocks waiting out the canceled
    // skips), then let the blocker go.
    std::thread destroyer([&] { t.reset(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    destroyer.join();
  }
  // A stray file that merely LOOKS like a segment must be neither replayed
  // nor deleted (the suffix parse requires all digits).
  { ASSERT_TRUE(fs->Create("rec/t.wal.1.bak").ok()); }
  // Reopen without a pool: every record — from both sealed generations and
  // the live tail — must be there, with the NEWEST version winning, and the
  // rotated segments must be gone after recovery flushed them.
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "gen2");
  EXPECT_EQ(S(*t->Get(BtreeKey{2, 0}).ValueOrDie()), "gen2");
  EXPECT_EQ(S(*t->Get(BtreeKey{3, 0}).ValueOrDie()), "live-tail");
  EXPECT_TRUE(fs->Exists("rec/t.wal.1.bak"));  // the stray survived
  auto segs = fs->List("rec", "t.wal").ValueOrDie();
  EXPECT_EQ(segs.size(), 2u);  // the fresh base segment + the stray
}

}  // namespace
}  // namespace tc
