#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "adm/parser.h"
#include "adm/printer.h"
#include "common/bytes.h"
#include "common/task_pool.h"
#include "core/tuple_compactor.h"
#include "lsm/lsm_tree.h"
#include "schema/schema_io.h"
#include "tests/test_util.h"

namespace tc {
namespace {

std::string S(const Buffer& b) { return std::string(b.begin(), b.end()); }

std::vector<uint8_t> ReadFileBytes(FileSystem* fs, const std::string& path) {
  auto f = fs->Open(path).ValueOrDie();
  std::vector<uint8_t> bytes(f->Size());
  TC_CHECK(f->Read(0, bytes.size(), bytes.data()).ok());
  return bytes;
}

void WriteFileBytes(FileSystem* fs, const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  TC_CHECK(fs->Delete(path).ok());
  auto f = fs->Create(path).ValueOrDie();
  TC_CHECK(f->Write(0, bytes.data(), bytes.size()).ok());
  TC_CHECK(f->Sync().ok());
}

LsmTreeOptions BaseOptions(std::shared_ptr<FileSystem> fs, BufferCache* cache) {
  LsmTreeOptions o;
  o.fs = std::move(fs);
  o.cache = cache;
  o.dir = "rec";
  o.name = "t";
  o.page_size = 4096;
  o.memtable_budget_bytes = 1 << 20;
  o.wal_sync_every = 1;
  return o;
}

TEST(Recovery, WalReplayRestoresAndFlushesMemtable) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "survives").ok());
    ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "also").ok());
    // "Crash": drop the tree without flushing. The WAL holds both records.
  }
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  // Paper §3.1.2: recovery replays the log and flushes the restored memtable.
  EXPECT_EQ(t->component_count(), 1u);
  EXPECT_TRUE(t->View().memtable().empty());
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "survives");
  EXPECT_EQ(S(*t->Get(BtreeKey{2, 0}).ValueOrDie()), "also");
}

TEST(Recovery, InvalidComponentRemoved) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "v1").ok());
    ASSERT_TRUE(t->Flush().ok());
  }
  // Simulate a crash mid-flush: a finished-but-unvalidated component file.
  {
    auto b = BtreeComponentBuilder::Create(fs, "rec/t.c00000099-00000099.btree",
                                           4096, nullptr)
                 .ValueOrDie();
    ASSERT_TRUE(b->Add(BtreeKey{9, 0}, false, "half-flushed").ok());
    ASSERT_TRUE(b->Finish(99, 99, {}).ok());
    // No MarkValid: validity bit unset.
  }
  ASSERT_TRUE(fs->Exists("rec/t.c00000099-00000099.btree"));
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  // The INVALID component was discarded and deleted (§3.1.2).
  EXPECT_FALSE(fs->Exists("rec/t.c00000099-00000099.btree"));
  EXPECT_EQ(t->component_count(), 1u);
  EXPECT_FALSE(t->Get(BtreeKey{9, 0}).ValueOrDie().has_value());
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "v1");
}

TEST(Recovery, MergedComponentSupersedesInputsAfterCrash) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  std::string merged_path;
  {
    auto opts = BaseOptions(fs, &cache);
    opts.merge_policy = MakeNoMergePolicy();
    auto t = LsmTree::Open(std::move(opts)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "a").ok());
    ASSERT_TRUE(t->Flush().ok());
    ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "b").ok());
    ASSERT_TRUE(t->Flush().ok());
  }
  // Hand-craft a VALID merged component [1,2] while the originals still
  // exist — the state right after a merge completes but before the merge
  // inputs are deleted.
  {
    auto b = BtreeComponentBuilder::Create(fs, "rec/t.c00000001-00000002.btree",
                                           4096, nullptr)
                 .ValueOrDie();
    ASSERT_TRUE(b->Add(BtreeKey{1, 0}, false, "a").ok());
    ASSERT_TRUE(b->Add(BtreeKey{2, 0}, false, "b").ok());
    ASSERT_TRUE(b->Finish(1, 2, {}).ok());
    ASSERT_TRUE(b->MarkValid().ok());
  }
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  // Only the merged component survives; contained inputs were dropped.
  auto view = t->View();
  ASSERT_EQ(view.component_count(), 1u);
  EXPECT_EQ(view.components()[0]->meta().cid_min, 1u);
  EXPECT_EQ(view.components()[0]->meta().cid_max, 2u);
  EXPECT_FALSE(fs->Exists("rec/t.c00000001-00000001.btree"));
  EXPECT_FALSE(fs->Exists("rec/t.c00000002-00000002.btree"));
  EXPECT_EQ(S(*t->Get(BtreeKey{2, 0}).ValueOrDie()), "b");
}

TEST(Recovery, NextComponentIdContinuesAfterRestart) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "x").ok());
    ASSERT_TRUE(t->Flush().ok());  // C1
  }
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "y").ok());
  ASSERT_TRUE(t->Flush().ok());  // must become C2, not clash with C1
  auto view = t->View();
  ASSERT_EQ(view.component_count(), 2u);
  EXPECT_EQ(view.components()[0]->meta().cid_min, 2u);
  EXPECT_EQ(view.components()[1]->meta().cid_min, 1u);
}

TEST(Recovery, DeletesReplayedFromWal) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "doomed").ok());
    ASSERT_TRUE(t->Flush().ok());
    ASSERT_TRUE(t->Delete(BtreeKey{1, 0}, nullptr).ok());
    // Crash before the delete flushes.
  }
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  EXPECT_FALSE(t->Get(BtreeKey{1, 0}).ValueOrDie().has_value());
}

// Pooled flush builds rotate the WAL into per-generation segments; a crash
// (or teardown that cancels queued builds) leaves rotated segments on disk,
// and the next Open must replay every segment in order — the sealed
// generations whose builds never installed, plus the live generation's tail.
TEST(Recovery, WalSegmentsFromPendingFlushBuildsReplayInOrder) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    TaskPool pool(1);
    // Occupy the single worker so the flush builds stay QUEUED; destroying
    // the tree then cancels them, leaving only the WAL segments behind.
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::seconds(30), [&] { return release; });
    });
    auto opts = BaseOptions(fs, &cache);
    opts.merge_pool = &pool;
    auto t = LsmTree::Open(std::move(opts)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "gen1.v1").ok());
    ASSERT_TRUE(t->Flush().ok());  // sealed; build queued behind the blocker
    ASSERT_TRUE(t->Upsert(BtreeKey{1, 0}, "gen2", nullptr).ok());
    ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "gen2").ok());
    ASSERT_TRUE(t->Flush().ok());  // second sealed generation
    ASSERT_TRUE(t->Insert(BtreeKey{3, 0}, "live-tail").ok());
    // The rotated segments exist alongside the live one.
    auto segs = fs->List("rec", "t.wal").ValueOrDie();
    EXPECT_GE(segs.size(), 3u);
    // Teardown on a helper thread (it blocks waiting out the canceled
    // skips), then let the blocker go.
    std::thread destroyer([&] { t.reset(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    destroyer.join();
  }
  // A stray file that merely LOOKS like a segment must be neither replayed
  // nor deleted (the suffix parse requires all digits).
  { ASSERT_TRUE(fs->Create("rec/t.wal.1.bak").ok()); }
  // Reopen without a pool: every record — from both sealed generations and
  // the live tail — must be there, with the NEWEST version winning, and the
  // rotated segments must be gone after recovery flushed them.
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "gen2");
  EXPECT_EQ(S(*t->Get(BtreeKey{2, 0}).ValueOrDie()), "gen2");
  EXPECT_EQ(S(*t->Get(BtreeKey{3, 0}).ValueOrDie()), "live-tail");
  EXPECT_TRUE(fs->Exists("rec/t.wal.1.bak"));  // the stray survived
  auto segs = fs->List("rec", "t.wal").ValueOrDie();
  EXPECT_EQ(segs.size(), 2u);  // the fresh base segment + the stray
}

// Group-commit crash point: a batch acknowledged BEFORE the crash (its group
// was written and synced) must survive replay in full; a later batch torn
// mid-write may vanish entirely — never a partial mix inside the acked batch.
TEST(Recovery, AckedBatchSurvivesTornFollowingBatch) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  std::vector<uint8_t> torn_wal;
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    std::vector<MemPutOp> batch_a;
    for (int64_t k = 1; k <= 4; ++k) batch_a.push_back({BtreeKey{k, 0}, "acked"});
    ASSERT_TRUE(t->InsertBatch(batch_a).ok());
    // Everything up to here was synced (cadence 1): the ack point.
    uint64_t acked_bytes = fs->FileSize("rec/t.wal").ValueOrDie();
    std::vector<MemPutOp> batch_b;
    for (int64_t k = 10; k <= 13; ++k) batch_b.push_back({BtreeKey{k, 0}, "torn"});
    ASSERT_TRUE(t->InsertBatch(batch_b).ok());
    // "Crash" between batch B's buffered write and its sync reaching the
    // platter: keep only a 7-byte sliver of B's first record header.
    torn_wal = ReadFileBytes(fs.get(), "rec/t.wal");
    ASSERT_GT(torn_wal.size(), acked_bytes + 7);
    torn_wal.resize(acked_bytes + 7);
  }
  WriteFileBytes(fs.get(), "rec/t.wal", torn_wal);
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  for (int64_t k = 1; k <= 4; ++k) {
    EXPECT_EQ(S(*t->Get(BtreeKey{k, 0}).ValueOrDie()), "acked") << k;
  }
  for (int64_t k = 10; k <= 13; ++k) {
    EXPECT_FALSE(t->Get(BtreeKey{k, 0}).ValueOrDie().has_value()) << k;
  }
}

// ---------------------------------------------------------------------------
// Filter crash matrix: a crash or corruption anywhere around the bloom-filter
// pages and the v2 footer must never produce a wrong answer — the outcomes
// are (a) the unvalidated component is discarded, (b) the open fails with a
// clean Corruption status, or (c) the component loads filterless and serves
// correct (if slower) lookups.
// ---------------------------------------------------------------------------

// Crash after the data pages were written but before the filter pages and
// footer made it out: the truncated, never-validated component is removed on
// recovery and lookups stay correct.
TEST(RecoveryFilterMatrix, CrashBeforeFilterFooterDiscardsComponent) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "good").ok());
    ASSERT_TRUE(t->Flush().ok());
  }
  const std::string half = "rec/t.c00000007-00000007.btree";
  {
    auto b = BtreeComponentBuilder::Create(fs, half, 4096, nullptr).ValueOrDie();
    ASSERT_TRUE(b->Add(BtreeKey{9, 0}, false, "torn").ok());
    ASSERT_TRUE(b->Finish(7, 7, {}).ok());
    // No MarkValid, and the tail of the file (filter pages + footer) never
    // hit the disk: keep only the first data page.
    auto bytes = ReadFileBytes(fs.get(), half);
    ASSERT_GT(bytes.size(), 4096u);
    bytes.resize(4096);
    WriteFileBytes(fs.get(), half, bytes);
  }
  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  EXPECT_FALSE(fs->Exists(half));
  EXPECT_EQ(t->component_count(), 1u);
  EXPECT_FALSE(t->Get(BtreeKey{9, 0}).ValueOrDie().has_value());
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "good");
}

// A VALID component whose footer page was lost (page-aligned truncation)
// fails the reopen with a clean Corruption — never a silent wrong answer.
TEST(RecoveryFilterMatrix, TruncatedFooterOnValidComponentFailsCleanly) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  const std::string path = "rec/t.c00000001-00000001.btree";
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "v").ok());
    ASSERT_TRUE(t->Flush().ok());
  }
  ASSERT_TRUE(fs->Exists(path));
  auto bytes = ReadFileBytes(fs.get(), path);
  ASSERT_GT(bytes.size(), 4096u);
  auto truncated = bytes;
  truncated.resize(truncated.size() - 4096);
  WriteFileBytes(fs.get(), path, truncated);
  auto r = LsmTree::Open(BaseOptions(fs, &cache));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);

  // Non-page-aligned truncation (torn write) is caught one layer lower but
  // is just as clean.
  truncated = bytes;
  truncated.resize(truncated.size() - 100);
  WriteFileBytes(fs.get(), path, truncated);
  auto r2 = LsmTree::Open(BaseOptions(fs, &cache));
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kCorruption);
}

// A flipped byte inside the filter pages fails the filter's own CRC: the
// component loads FILTERLESS (degraded) and keeps answering correctly.
TEST(RecoveryFilterMatrix, CorruptedFilterPageLoadsFilterlessAndServes) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  const std::string path = "rec/t.c00000001-00000001.btree";
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    for (int64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(t->Insert(BtreeKey{k, 0}, "v" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(t->Flush().ok());
    ASSERT_TRUE(t->View().components()[0]->has_filter());
  }
  // Locate the filter pages through the v2 footer (filter_start lives right
  // after the v1 fixed fields, at offset 84) and flip one byte.
  auto bytes = ReadFileBytes(fs.get(), path);
  size_t footer_off = bytes.size() - 4096;
  uint32_t filter_start = GetFixed32(bytes.data() + footer_off + 84);
  ASSERT_NE(filter_start, UINT32_MAX);
  bytes[static_cast<size_t>(filter_start) * 4096 + 5] ^= 0xff;
  WriteFileBytes(fs.get(), path, bytes);

  auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
  auto view = t->View();
  ASSERT_EQ(view.component_count(), 1u);
  EXPECT_FALSE(view.components()[0]->has_filter());
  EXPECT_TRUE(view.components()[0]->filter_degraded());
  for (int64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(S(*t->Get(BtreeKey{k, 0}).ValueOrDie()), "v" + std::to_string(k));
  }
  EXPECT_FALSE(t->Get(BtreeKey{999, 0}).ValueOrDie().has_value());
  // Degraded components never consult a filter, so no counters move.
  EXPECT_EQ(t->stats().filter_checks, 0u);
}

// A flipped byte in the footer's filter-CRC field breaks the FOOTER checksum
// (it covers the filter locator too): clean Corruption on open.
TEST(RecoveryFilterMatrix, CorruptedFooterFilterCrcFailsCleanly) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  const std::string path = "rec/t.c00000001-00000001.btree";
  {
    auto t = LsmTree::Open(BaseOptions(fs, &cache)).ValueOrDie();
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "v").ok());
    ASSERT_TRUE(t->Flush().ok());
  }
  auto bytes = ReadFileBytes(fs.get(), path);
  size_t footer_off = bytes.size() - 4096;
  bytes[footer_off + 92] ^= 0xff;  // stored filter_crc field
  WriteFileBytes(fs.get(), path, bytes);
  auto r = LsmTree::Open(BaseOptions(fs, &cache));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

// Crash in the window after a transforming, recompressing merge installed its
// output but before the merge inputs were deleted (the state the reclaimer's
// deferred deletion leaves behind on power loss). Recovery must drop the
// contained inputs, open the heavy-codec merged component through its
// self-describing LAF, and reload the MERGE-inferred schema so the re-encoded
// records decode losslessly.
TEST(Recovery, CrashMidMergeRewriteRecoversTransformedHeavyComponent) {
  auto fs = MakeMemFileSystem();
  BufferCache cache(4096, 512);
  DatasetType type = DatasetType::OpenWithPk("id");
  std::vector<AdmValue> records;
  auto payload_for = [&](int64_t id) {
    AdmValue rec =
        ParseAdm(R"({"id": )" + std::to_string(id) + R"(, "name": "user)" +
                 std::to_string(id) + R"(", "score": )" +
                 std::to_string(id * 7) + "}")
            .ValueOrDie();
    records.push_back(rec);
    Buffer b;
    TC_CHECK(EncodeVectorRecord(rec, type, &b).ok());
    return b;
  };
  // Phase 1: two components of UNCOMPACTED vector records (schemaless
  // ingest: no flush transformer), plain codec, no merging.
  {
    auto opts = BaseOptions(fs, &cache);
    opts.merge_policy = MakeNoMergePolicy();
    auto t = LsmTree::Open(std::move(opts)).ValueOrDie();
    for (int64_t id = 0; id < 8; ++id) {
      Buffer p = payload_for(id);
      ASSERT_TRUE(t->Insert(BtreeKey{id, 0}, S(p)).ok());
      if (id == 3) {
        ASSERT_TRUE(t->Flush().ok());
      }
    }
    ASSERT_TRUE(t->Flush().ok());
  }
  // Snapshot every component file (data, LAF sidecars, validity markers).
  std::vector<std::pair<std::string, std::vector<uint8_t>>> snapshot;
  for (const auto& f : fs->List("rec", "t.c").ValueOrDie()) {
    snapshot.emplace_back("rec/" + f, ReadFileBytes(fs.get(), "rec/" + f));
  }
  ASSERT_FALSE(snapshot.empty());
  // Phase 2: one more flush triggers the full-cascade merge, with the tuple
  // compactor as merge transformer and heavy recompression of the bottom
  // output. The merge re-encodes every schemaless survivor.
  {
    TupleCompactor compactor(&type);
    auto opts = BaseOptions(fs, &cache);
    opts.merge_policy = MakeConstantMergePolicy(1);
    opts.merge_transformer = &compactor;
    opts.merge_recompress = CompressionKind::kHeavy;
    auto t = LsmTree::Open(std::move(opts)).ValueOrDie();
    Buffer p = payload_for(8);
    ASSERT_TRUE(t->Insert(BtreeKey{8, 0}, S(p)).ok());
    ASSERT_TRUE(t->Flush().ok());  // inline: flush then merge [0..8]
    LsmStats s = t->stats();
    ASSERT_EQ(s.merge_count, 1u);
    EXPECT_EQ(s.merge_records_recompacted, 9u);
    EXPECT_EQ(s.merge_components_recompressed, 1u);
  }
  // Simulate the crash: resurrect the (already deleted) merge inputs next to
  // the installed merged component.
  for (const auto& [path, bytes] : snapshot) {
    if (fs->Exists(path)) continue;
    auto f = fs->Create(path).ValueOrDie();
    ASSERT_TRUE(f->Write(0, bytes.data(), bytes.size()).ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  // Recovery with a FRESH compactor: contained inputs are dropped, the heavy
  // merged component opens via its LAF, and OnRecoveredSchema reloads the
  // merge-inferred schema.
  TupleCompactor fresh(&type);
  auto opts = BaseOptions(fs, &cache);
  opts.merge_policy = MakeNoMergePolicy();
  opts.transformer = &fresh;
  auto t = LsmTree::Open(std::move(opts)).ValueOrDie();
  auto view = t->View();
  ASSERT_EQ(view.component_count(), 1u);
  EXPECT_EQ(view.components()[0]->meta().cid_min, 1u);
  EXPECT_EQ(view.components()[0]->compression(), CompressionKind::kHeavy);
  Schema schema = fresh.Snapshot();
  for (const auto& rec : records) {
    int64_t id = rec.FindField("id")->int_value();
    auto got = t->Get(BtreeKey{id, 0}).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << id;
    VectorRecordView rv(got->data(), got->size());
    EXPECT_TRUE(rv.compacted()) << id;
    AdmValue decoded;
    ASSERT_TRUE(DecodeVectorRecord(rv, type, &schema, &decoded).ok()) << id;
    EXPECT_EQ(PrintAdm(decoded), PrintAdm(rec)) << id;
  }
}

}  // namespace
}  // namespace tc
