// Tests for the vectorized execution tier: ColumnVector storage adaptation,
// vec-vs-row paper-query equivalence (the bridge must be invisible to sinks),
// and the partitioned hash join checked against a nested-loop reference under
// randomized partition counts, key skew, budget-forced multi-wave execution,
// and concurrent ingest.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "query/paper_queries.h"
#include "query/planner.h"
#include "query/vec/column_batch.h"
#include "query/vec/hash_join.h"
#include "query/vec/vec_operator.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace tc {
namespace {

using testutil::DatasetFixture;
using testutil::SmallOptions;

// ---------------------------------------------------------------------------
// ColumnVector storage adaptation
// ---------------------------------------------------------------------------

TEST(ColumnVector, IntFamilyStaysTyped) {
  ColumnVector c;
  c.AppendInt64(AdmTag::kBigInt, 42);
  c.AppendInt64(AdmTag::kSmallInt, -7);
  c.AppendInt64(AdmTag::kTinyInt, 3);
  EXPECT_EQ(c.kind(), ColumnVector::Kind::kInt64);
  EXPECT_EQ(c.Int64At(0), 42);
  EXPECT_EQ(c.Int64At(1), -7);
  // ValueAt reconstructs the exact original tag, not a widened one.
  EXPECT_EQ(c.ValueAt(1).tag(), AdmTag::kSmallInt);
  EXPECT_EQ(c.ValueAt(1).int_value(), -7);
  EXPECT_EQ(c.ValueAt(2).tag(), AdmTag::kTinyInt);
}

TEST(ColumnVector, ValuelessPrefixBackfillsIntoTypedStorage) {
  ColumnVector c;
  c.AppendMissing();
  c.AppendNull();
  c.AppendInt64(AdmTag::kBigInt, 9);
  EXPECT_EQ(c.kind(), ColumnVector::Kind::kInt64);
  EXPECT_FALSE(c.HasValueAt(0));
  EXPECT_FALSE(c.HasValueAt(1));
  EXPECT_TRUE(c.HasValueAt(2));
  EXPECT_EQ(c.ValueAt(0).tag(), AdmTag::kMissing);
  EXPECT_EQ(c.ValueAt(1).tag(), AdmTag::kNull);
  EXPECT_EQ(c.Int64At(2), 9);
}

TEST(ColumnVector, FamilyMismatchDemotesLosslessly) {
  ColumnVector c;
  c.AppendInt64(AdmTag::kBigInt, 1);
  c.AppendString(AdmTag::kString, "abc");
  c.AppendDouble(AdmTag::kDouble, 2.5);
  EXPECT_EQ(c.kind(), ColumnVector::Kind::kValue);
  EXPECT_EQ(c.ValueAt(0).tag(), AdmTag::kBigInt);
  EXPECT_EQ(c.ValueAt(0).int_value(), 1);
  EXPECT_EQ(c.ValueAt(1).string_value(), "abc");
  EXPECT_DOUBLE_EQ(c.ValueAt(2).double_value(), 2.5);
}

TEST(ColumnVector, StringArenaRoundTrip) {
  ColumnVector c;
  c.AppendString(AdmTag::kString, "hello");
  c.AppendMissing();
  c.AppendString(AdmTag::kString, "");
  c.AppendString(AdmTag::kString, "world!");
  EXPECT_EQ(c.kind(), ColumnVector::Kind::kString);
  EXPECT_EQ(c.StringAt(0), "hello");
  EXPECT_EQ(c.StringAt(2), "");
  EXPECT_EQ(c.StringAt(3), "world!");
  EXPECT_EQ(c.ValueAt(3).string_value(), "world!");
}

TEST(ColumnVector, AppendValueNestedDemotes) {
  ColumnVector c;
  AdmValue obj = AdmValue::Object();
  obj.AddField("x", AdmValue::BigInt(5));
  c.AppendValue(obj);
  EXPECT_EQ(c.kind(), ColumnVector::Kind::kValue);
  AdmValue round_trip = c.ValueAt(0);
  const AdmValue* x = round_trip.FindField("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->int_value(), 5);
}

TEST(ColumnVector, AppendFromCopiesTypedRows) {
  ColumnVector src;
  src.AppendInt64(AdmTag::kBigInt, 10);
  src.AppendNull();
  src.AppendInt64(AdmTag::kInt, 20);
  ColumnVector dst;
  dst.AppendFrom(src, 2);
  dst.AppendFrom(src, 1);
  dst.AppendFrom(src, 0);
  EXPECT_EQ(dst.kind(), ColumnVector::Kind::kInt64);
  EXPECT_EQ(dst.Int64At(0), 20);
  EXPECT_EQ(dst.ValueAt(0).tag(), AdmTag::kInt);
  EXPECT_FALSE(dst.HasValueAt(1));
  EXPECT_EQ(dst.Int64At(2), 10);
}

TEST(ColumnBatch, SelectionVectorDrivesActiveRows) {
  ColumnBatch b;
  b.Reset(1);
  for (int i = 0; i < 5; ++i) b.cols[0].AppendInt64(AdmTag::kBigInt, i);
  b.rows = 5;
  EXPECT_EQ(b.ActiveRows(), 5u);
  b.sel = {1, 3};
  b.sel_active = true;
  EXPECT_EQ(b.ActiveRows(), 2u);
  std::vector<int64_t> seen;
  b.ForEachActive([&](size_t r) { seen.push_back(b.cols[0].Int64At(r)); });
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 3}));
}

// ---------------------------------------------------------------------------
// Vec-vs-row paper-query equivalence: toggling QueryOptions::vectorized (and
// shrinking the batch size to force many batch boundaries) must not change
// any query result.
// ---------------------------------------------------------------------------

TEST(VecRowEquivalence, PaperQueriesAgree) {
  struct Case {
    const char* workload;
    int n;
  };
  for (const Case& cs : {Case{"twitter", 60}, Case{"sensors", 24}, Case{"wos", 40}}) {
    DatasetFixture fx;
    DatasetOptions o = SmallOptions(SchemaMode::kInferred, 128);
    auto gen = MakeGenerator(cs.workload, 42);
    ASSERT_TRUE(fx.Open(std::move(o), 2).ok());
    for (int i = 0; i < cs.n; ++i) {
      ASSERT_TRUE(fx.dataset->Insert(gen->NextRecord()).ok());
    }
    ASSERT_TRUE(fx.dataset->FlushAll().ok());
    for (int q = 1; q <= 4; ++q) {
      QueryOptions row;
      row.vectorized = false;
      auto ref = RunPaperQuery(cs.workload, q, fx.dataset.get(), row);
      ASSERT_TRUE(ref.ok()) << cs.workload << " q" << q << ": "
                            << ref.status().ToString();
      for (size_t batch_rows : {size_t{1}, size_t{7}, size_t{1024}}) {
        QueryOptions vec;
        vec.vectorized = true;
        vec.vec_batch_rows = batch_rows;
        auto got = RunPaperQuery(cs.workload, q, fx.dataset.get(), vec);
        ASSERT_TRUE(got.ok()) << cs.workload << " q" << q;
        EXPECT_EQ(got.value().summary, ref.value().summary)
            << cs.workload << " q" << q << " batch_rows=" << batch_rows;
        EXPECT_EQ(got.value().result_hash, ref.value().result_hash)
            << cs.workload << " q" << q << " batch_rows=" << batch_rows;
        EXPECT_EQ(got.value().stats.rows_scanned, ref.value().stats.rows_scanned);
      }
    }
  }
}

TEST(VecRowEquivalence, VectorizedRunsReportOperatorCounters) {
  DatasetFixture fx;
  auto gen = MakeGenerator("twitter", 7);
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred, 128), 2).ok());
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(fx.dataset->Insert(gen->NextRecord()).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  QueryOptions vec;
  vec.vectorized = true;
  auto res = TwitterQ2(fx.dataset.get(), vec).ValueOrDie();
  bool saw_scan = false;
  for (const QueryOpCounters& op : res.stats.operators) {
    if (op.name == "scan") {
      saw_scan = true;
      EXPECT_GT(op.batches, 0u);
      EXPECT_EQ(op.rows, 30u);
    }
  }
  EXPECT_TRUE(saw_scan);
  QueryOptions row;
  row.vectorized = false;
  auto rres = TwitterQ2(fx.dataset.get(), row).ValueOrDie();
  EXPECT_TRUE(rres.stats.operators.empty());
}

// IN-list predicates through all four (vectorized × pushdown) paths: the
// lowered vector matcher, the vec filter, and the row-level fallback must
// select the same rows.
TEST(VecRowEquivalence, InListPredicateAllPathsAgree) {
  DatasetFixture fx;
  auto gen = MakeGenerator("twitter", 11);
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred, 128), 2).ok());
  std::vector<AdmValue> recs;
  for (int i = 0; i < 80; ++i) {
    AdmValue r = gen->NextRecord();
    RemapTweetUserId(&r, i % 11);  // small uid universe so the IN list hits
    recs.push_back(r);
    ASSERT_TRUE(fx.dataset->Insert(recs.back()).ok());
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  auto pred = ScanPredicate::And({ScanPredicate::In(
      "user.id", {AdmValue::BigInt(2), AdmValue::BigInt(5), AdmValue::BigInt(7)})});
  size_t expected = 0;
  for (const AdmValue& r : recs) {
    const AdmValue* u = r.FindField("user");
    ASSERT_NE(u, nullptr);
    int64_t uid = u->FindField("id")->int_value();
    if (uid == 2 || uid == 5 || uid == 7) ++expected;
  }
  ASSERT_GT(expected, 0u);
  for (bool vectorized : {false, true}) {
    for (bool pushdown : {false, true}) {
      QueryOptions opt;
      opt.vectorized = vectorized;
      opt.pushdown_scan_predicates = pushdown;
      opt.vec_batch_rows = 5;
      std::vector<uint64_t> counts(2, 0);
      auto sink = [&](int p) {
        return [&counts, p](Row&&) {
          ++counts[p];
          return Status::OK();
        };
      };
      auto stats = RunPlannedScan(fx.dataset.get(), opt, {}, pred, sink);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(counts[0] + counts[1], expected)
          << "vectorized=" << vectorized << " pushdown=" << pushdown;
    }
  }
}

// ---------------------------------------------------------------------------
// Hash join vs a nested-loop reference
// ---------------------------------------------------------------------------

using JoinedRow = std::tuple<int64_t, std::string, int64_t, int64_t>;

struct JoinFixture {
  DatasetFixture users;
  DatasetFixture tweets;
  std::map<int64_t, std::string> country;            // uid -> country
  std::vector<std::pair<int64_t, int64_t>> probes;   // (tweet id, uid)
  std::vector<JoinedRow> reference;                  // sorted

  // skew: 0 = uniform over [0, n_users + 5) (some tweets find no author),
  //       1 = 80% of tweets hit the first 10% of users.
  void Load(int n_users, int n_tweets, size_t upar, size_t tpar, int skew,
            uint64_t seed) {
    ASSERT_TRUE(users.Open(SmallOptions(SchemaMode::kInferred, 128), upar).ok());
    auto ugen = MakeGenerator("twitter_users", seed);
    for (int i = 0; i < n_users; ++i) {
      AdmValue r = ugen->NextRecord();
      country[r.FindField("id")->int_value()] =
          r.FindField("country")->string_value();
      ASSERT_TRUE(users.dataset->Insert(r).ok());
    }
    ASSERT_TRUE(users.dataset->FlushAll().ok());

    ASSERT_TRUE(tweets.Open(SmallOptions(SchemaMode::kInferred, 128), tpar).ok());
    auto tgen = MakeGenerator("twitter", seed + 1);
    Rng rng(seed + 2);
    int hot = std::max(1, n_users / 10);
    for (int i = 0; i < n_tweets; ++i) {
      AdmValue t = tgen->NextRecord();
      int64_t uid = skew == 1 && rng.Bernoulli(0.8)
                        ? static_cast<int64_t>(rng.Uniform(hot))
                        : static_cast<int64_t>(rng.Uniform(n_users + 5));
      RemapTweetUserId(&t, uid);
      int64_t tid = t.FindField("id")->int_value();
      probes.emplace_back(tid, uid);
      ASSERT_TRUE(tweets.dataset->Insert(t).ok());
    }
    ASSERT_TRUE(tweets.dataset->FlushAll().ok());

    for (const auto& [tid, uid] : probes) {
      auto it = country.find(uid);
      if (it != country.end()) {
        reference.emplace_back(uid, it->second, uid, tid);
      }
    }
    std::sort(reference.begin(), reference.end());
  }

  // Runs the join and returns the sorted output rows
  // [build id, country, probe user.id, tweet id].
  Result<JoinStats> Run(JoinSpec spec, std::vector<JoinedRow>* out) {
    spec.build_key = "id";
    spec.probe_key = "user.id";
    spec.build_paths = {"country"};
    spec.probe_paths = {"id"};
    size_t tpar = tweets.dataset->partition_count();
    std::vector<std::vector<JoinedRow>> rows(tpar);
    auto factory = [&rows](int partition) {
      std::vector<JoinedRow>* mine = &rows[partition];
      return [mine](const ColumnBatch& b) {
        b.ForEachActive([&](size_t r) {
          mine->emplace_back(b.cols[0].ValueAt(r).int_value(),
                             std::string(b.cols[1].ValueAt(r).string_value()),
                             b.cols[2].ValueAt(r).int_value(),
                             b.cols[3].ValueAt(r).int_value());
        });
        return Status::OK();
      };
    };
    TC_ASSIGN_OR_RETURN(
        JoinStats stats,
        HashJoinDatasets(users.dataset.get(), tweets.dataset.get(), spec, factory));
    out->clear();
    for (auto& v : rows) out->insert(out->end(), v.begin(), v.end());
    std::sort(out->begin(), out->end());
    return stats;
  }
};

TEST(HashJoin, MatchesNestedLoopReferenceAcrossPartitionsAndSkew) {
  struct Config {
    size_t upar, tpar;
    int skew;
  };
  uint64_t seed = 900;
  for (const Config& cfg :
       {Config{1, 1, 0}, Config{2, 3, 0}, Config{3, 2, 1}, Config{2, 2, 1}}) {
    JoinFixture jf;
    jf.Load(40, 150, cfg.upar, cfg.tpar, cfg.skew, seed += 17);
    ASSERT_FALSE(jf.reference.empty());
    for (bool vectorized : {true, false}) {
      JoinSpec spec;
      spec.vectorized = vectorized;
      spec.batch_rows = 9;  // force many output-batch flushes
      std::vector<JoinedRow> got;
      auto stats = jf.Run(spec, &got);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(got, jf.reference)
          << "upar=" << cfg.upar << " tpar=" << cfg.tpar << " skew=" << cfg.skew
          << " vectorized=" << vectorized;
      EXPECT_EQ(stats.value().output_rows, jf.reference.size());
      EXPECT_EQ(stats.value().passes, 1u);
      EXPECT_EQ(stats.value().build_rows, 40u);
      EXPECT_EQ(stats.value().probe_rows, 150u);
    }
  }
}

TEST(HashJoin, TinyBudgetForcesMultipleWavesSameResult) {
  JoinFixture jf;
  jf.Load(60, 200, /*upar=*/3, /*tpar=*/2, /*skew=*/0, 1234);
  JoinSpec spec;
  std::vector<JoinedRow> one_wave;
  ASSERT_TRUE(jf.Run(spec, &one_wave).ok());
  EXPECT_EQ(one_wave, jf.reference);

  // A 1-byte budget admits exactly the first (always-admitted) build partition
  // per wave: 3 build partitions -> 3 full probe passes.
  spec.build_budget_bytes = 1;
  std::vector<JoinedRow> waves;
  auto stats = jf.Run(spec, &waves);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().passes, 3u);
  EXPECT_EQ(stats.value().probe_rows, 3 * 200u);
  EXPECT_EQ(waves, jf.reference);
}

TEST(HashJoin, ProbePredicateFiltersBeforeJoin) {
  JoinFixture jf;
  jf.Load(30, 100, 2, 2, 0, 555);
  JoinSpec spec;
  spec.probe_predicate = ScanPredicate::And(
      {ScanPredicate::Term("user.id", CompareOp::kLt, AdmValue::BigInt(15))});
  std::vector<JoinedRow> got;
  ASSERT_TRUE(jf.Run(spec, &got).ok());
  std::vector<JoinedRow> expected;
  for (const JoinedRow& r : jf.reference) {
    if (std::get<2>(r) < 15) expected.push_back(r);
  }
  EXPECT_EQ(got, expected);
}

// Joins repeatedly while tweets ingest concurrently: each join pins read views
// at start, so it must see a consistent prefix (every matched tweet existed,
// output never shrinks below the pre-ingest reference). Primarily a TSan
// target.
TEST(HashJoin, StormUnderConcurrentIngest) {
  JoinFixture jf;
  jf.Load(30, 80, 2, 2, 0, 321);
  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    auto tgen = MakeGenerator("twitter", 999);
    // Skip ids already used by the fixture.
    for (int i = 0; i < 80; ++i) tgen->NextRecord();
    Rng rng(1000);
    while (!stop.load(std::memory_order_relaxed)) {
      AdmValue t = tgen->NextRecord();
      RemapTweetUserId(&t, static_cast<int64_t>(rng.Uniform(30)));
      ASSERT_TRUE(jf.tweets.dataset->Insert(t).ok());
    }
  });
  size_t baseline = jf.reference.size();
  std::vector<std::thread> joiners;
  std::atomic<int> failures{0};
  for (int t = 0; t < 2; ++t) {
    joiners.emplace_back([&, t] {
      for (int i = 0; i < 3; ++i) {
        JoinSpec spec;
        spec.batch_rows = 16;
        spec.vectorized = (t == 0);
        std::vector<std::vector<JoinedRow>> rows(2);
        auto factory = [&rows](int partition) {
          std::vector<JoinedRow>* mine = &rows[partition];
          return [mine](const ColumnBatch& b) {
            b.ForEachActive([&](size_t r) {
              mine->emplace_back(b.cols[0].ValueAt(r).int_value(), "",
                                 b.cols[2].ValueAt(r).int_value(),
                                 b.cols[3].ValueAt(r).int_value());
            });
            return Status::OK();
          };
        };
        JoinSpec s = spec;
        s.build_key = "id";
        s.probe_key = "user.id";
        s.build_paths = {"country"};
        s.probe_paths = {"id"};
        auto stats = HashJoinDatasets(jf.users.dataset.get(),
                                      jf.tweets.dataset.get(), s, factory);
        if (!stats.ok() ||
            stats.value().output_rows < baseline) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : joiners) th.join();
  stop.store(true);
  feeder.join();
  EXPECT_EQ(failures.load(), 0);
}

// The join-backed paper query: group tweets per author country and agree with
// a reference computed from the generators' own output.
TEST(HashJoin, TwitterJoinTopCountriesMatchesReference) {
  JoinFixture jf;
  jf.Load(50, 200, 2, 2, /*skew=*/1, 777);
  std::map<std::string, uint64_t> ref_counts;
  for (const JoinedRow& r : jf.reference) ++ref_counts[std::get<1>(r)];
  std::vector<std::pair<uint64_t, std::string>> order;
  for (const auto& [c, n] : ref_counts) order.emplace_back(n, c);
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  for (bool vectorized : {true, false}) {
    QueryOptions opt;
    opt.vectorized = vectorized;
    auto res = TwitterJoinTopCountries(jf.users.dataset.get(),
                                       jf.tweets.dataset.get(), opt);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res.value().stats.plan, "hash-join");
    // The summary renders "country=count" entries (%.4f counts); the top
    // reference entry must appear with its exact count.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "=%.4f", static_cast<double>(order[0].first));
    std::string want = order[0].second + buf;
    EXPECT_NE(res.value().summary.find(want), std::string::npos)
        << "summary: " << res.value().summary << " want " << want;
  }
}

}  // namespace
}  // namespace tc
