#include <gtest/gtest.h>

#include "adm/parser.h"
#include "adm/printer.h"
#include "query/field_access.h"
#include "tests/test_util.h"

namespace tc {
namespace {

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }
DatasetType PkType() { return DatasetType::OpenWithPk("id"); }

TEST(FieldPath, ParseAndPrint) {
  FieldPath p = FieldPath::Parse("entities.hashtags[*].text");
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps[0].kind, PathStep::kField);
  EXPECT_EQ(p.steps[0].name, "entities");
  EXPECT_EQ(p.steps[2].kind, PathStep::kWildcard);
  EXPECT_EQ(p.steps[3].name, "text");
  EXPECT_TRUE(p.HasWildcard());
  EXPECT_EQ(p.ToString(), "entities.hashtags[*].text");

  FieldPath q = FieldPath::Parse("a.b[2].c");
  EXPECT_EQ(q.steps[2].kind, PathStep::kIndex);
  EXPECT_EQ(q.steps[2].index, 2u);
  EXPECT_FALSE(q.HasWildcard());
  EXPECT_EQ(q.ToString(), "a.b[2].c");
}

TEST(NavigateAdmValue, AllStepKinds) {
  AdmValue v = R(R"({"a": {"b": [{"c": 1}, {"c": 2}, {"d": 3}]}})");
  EXPECT_EQ(NavigateAdmValue(v, FieldPath::Parse("a.b[0].c").steps).int_value(), 1);
  EXPECT_EQ(NavigateAdmValue(v, FieldPath::Parse("a.b[9]").steps).tag(),
            AdmTag::kMissing);
  AdmValue wc = NavigateAdmValue(v, FieldPath::Parse("a.b[*].c").steps);
  ASSERT_EQ(wc.tag(), AdmTag::kArray);
  ASSERT_EQ(wc.size(), 2u);  // third item has no "c"
  EXPECT_EQ(wc.item(1).int_value(), 2);
}

struct Encoded {
  Buffer vb;
  Buffer adm;
  DatasetType type = PkType();

  explicit Encoded(const AdmValue& rec) {
    TC_CHECK(EncodeVectorRecord(rec, type, &vb).ok());
    TC_CHECK(EncodeAdmRecord(rec, type, &adm).ok());
  }

  std::vector<AdmValue> Vb(const std::vector<std::string>& paths,
                           bool consolidate = true) {
    std::vector<FieldPath> fps;
    for (const auto& p : paths) fps.push_back(FieldPath::Parse(p));
    std::vector<AdmValue> out;
    VectorRecordView view(vb.data(), vb.size());
    Status st = consolidate
                    ? GetValuesVector(view, type, nullptr, fps, &out)
                    : GetValuesVectorUnconsolidated(view, type, nullptr, fps, &out);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  std::vector<AdmValue> Adm(const std::vector<std::string>& paths) {
    std::vector<FieldPath> fps;
    for (const auto& p : paths) fps.push_back(FieldPath::Parse(p));
    std::vector<AdmValue> out;
    EXPECT_TRUE(GetValuesAdm(adm.data(), adm.size(), type, fps, &out).ok());
    return out;
  }
};

TEST(GetValues, ScalarsAndNested) {
  Encoded e(R(R"({"id": 1, "user": {"name": "Ann", "age": 26},
                 "tags": ["a", "b", "c"], "geo": point(1.0, 2.0)})"));
  for (bool vb : {true, false}) {
    auto out = vb ? e.Vb({"user.name", "user.age", "tags[1]", "geo", "nope.x"})
                  : e.Adm({"user.name", "user.age", "tags[1]", "geo", "nope.x"});
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0].string_value(), "Ann");
    EXPECT_EQ(out[1].int_value(), 26);
    EXPECT_EQ(out[2].string_value(), "b");
    EXPECT_EQ(out[3].tag(), AdmTag::kPoint);
    EXPECT_EQ(out[4].tag(), AdmTag::kMissing);
  }
}

TEST(GetValues, WildcardThroughArrayOfObjects) {
  Encoded e(R(R"({"id": 2, "deps": [{"n": "Bob", "a": 6}, {"n": "Carol", "a": 10},
                                    "skipme", {"a": 99}]})"));
  for (bool vb : {true, false}) {
    auto out = vb ? e.Vb({"deps[*].n"}) : e.Adm({"deps[*].n"});
    ASSERT_EQ(out[0].tag(), AdmTag::kArray);
    ASSERT_EQ(out[0].size(), 2u);  // string item and n-less object don't match
    EXPECT_EQ(out[0].item(0).string_value(), "Bob");
    EXPECT_EQ(out[0].item(1).string_value(), "Carol");
  }
}

TEST(GetValues, WildcardOverNonArrayYieldsEmpty) {
  // The WoS union case: address_name may be a single object.
  Encoded e(R(R"({"id": 3, "addr": {"spec": {"country": "USA"}}})"));
  for (bool vb : {true, false}) {
    auto out = vb ? e.Vb({"addr[*].spec.country"}) : e.Adm({"addr[*].spec.country"});
    ASSERT_EQ(out[0].tag(), AdmTag::kArray);
    EXPECT_EQ(out[0].size(), 0u);
  }
}

TEST(GetValues, SubtreeMaterialization) {
  Encoded e(R(R"({"id": 4, "readings": [{"t": 1.5, "ts": 10}, {"t": 2.5, "ts": 20}]})"));
  for (bool vb : {true, false}) {
    auto out = vb ? e.Vb({"readings"}) : e.Adm({"readings"});
    ASSERT_EQ(out[0].tag(), AdmTag::kArray);
    ASSERT_EQ(out[0].size(), 2u);
    EXPECT_EQ(PrintAdm(out[0].item(0)), PrintAdm(R(R"({"t": 1.5, "ts": 10})")));
  }
}

TEST(GetValues, ConsolidatedEqualsUnconsolidated) {
  Rng rng(271828);
  DatasetType type = PkType();
  for (int i = 0; i < 100; ++i) {
    AdmValue rec = testutil::RandomRecord(&rng, i, 4);
    Encoded e(rec);
    std::vector<std::string> paths = {"f0", "f1.f0_abc", "f2[*].f1", "f3[0]",
                                      "f4.f2"};
    auto consolidated = e.Vb(paths, true);
    auto unconsolidated = e.Vb(paths, false);
    ASSERT_EQ(consolidated.size(), unconsolidated.size());
    for (size_t k = 0; k < consolidated.size(); ++k) {
      EXPECT_EQ(PrintAdm(consolidated[k]), PrintAdm(unconsolidated[k])) << i;
    }
  }
}

TEST(GetValues, VectorMatchesAdmOracle) {
  // Byte-level accessors agree with navigation over the decoded tree.
  Rng rng(314159);
  DatasetType type = PkType();
  std::vector<std::string> paths = {"f0",      "f1[*].f0_xyz", "f2.f1.f0_q",
                                    "f3[1]",   "f5[*]",        "f6.f3[*].f2"};
  std::vector<FieldPath> fps;
  for (const auto& p : paths) fps.push_back(FieldPath::Parse(p));
  for (int i = 0; i < 120; ++i) {
    AdmValue rec = testutil::RandomRecord(&rng, i, 5);
    Encoded e(rec);
    auto vb = e.Vb(paths);
    auto adm = e.Adm(paths);
    for (size_t k = 0; k < paths.size(); ++k) {
      AdmValue oracle = NavigateAdmValue(rec, fps[k].steps);
      // Wildcard paths over non-arrays: accessors return empty arrays while
      // tree navigation returns missing; normalize for comparison.
      if (fps[k].HasWildcard() && oracle.tag() == AdmTag::kMissing) {
        oracle = AdmValue::Array();
      }
      EXPECT_EQ(PrintAdm(vb[k]), PrintAdm(oracle)) << i << " path " << paths[k];
      EXPECT_EQ(PrintAdm(adm[k]), PrintAdm(oracle)) << i << " path " << paths[k];
    }
  }
}

TEST(GetValues, CompactedRecordsResolveNamesViaSchema) {
  DatasetType type = PkType();
  AdmValue rec = R(R"({"id": 5, "user": {"name": "Zoe"}, "n": 7})");
  Buffer raw;
  ASSERT_TRUE(EncodeVectorRecord(rec, type, &raw).ok());
  Schema schema;
  Buffer compacted;
  ASSERT_TRUE(InferAndCompactVectorRecord(VectorRecordView(raw.data(), raw.size()),
                                          type, &schema, &compacted)
                  .ok());
  std::vector<AdmValue> out;
  ASSERT_TRUE(GetValuesVector(VectorRecordView(compacted.data(), compacted.size()),
                              type, &schema,
                              {FieldPath::Parse("user.name"), FieldPath::Parse("n")},
                              &out)
                  .ok());
  EXPECT_EQ(out[0].string_value(), "Zoe");
  EXPECT_EQ(out[1].int_value(), 7);
}

TEST(GetValues, DeclaredFieldAccessInVectorRecords) {
  DatasetType type;
  type.primary_key_field = "id";
  type.root = TypeDescriptor::Object(true);
  type.root->AddField("id", TypeDescriptor::Scalar(AdmTag::kBigInt));
  type.root->AddField("title", TypeDescriptor::Scalar(AdmTag::kString));
  AdmValue rec = R(R"({"id": 6, "title": "declared!", "open_f": 1})");
  Buffer vb;
  ASSERT_TRUE(EncodeVectorRecord(rec, type, &vb).ok());
  std::vector<AdmValue> out;
  ASSERT_TRUE(GetValuesVector(VectorRecordView(vb.data(), vb.size()), type, nullptr,
                              {FieldPath::Parse("title"), FieldPath::Parse("id")},
                              &out)
                  .ok());
  EXPECT_EQ(out[0].string_value(), "declared!");
  EXPECT_EQ(out[1].int_value(), 6);
}

}  // namespace
}  // namespace tc
