#include <gtest/gtest.h>

#include <algorithm>

#include "adm/parser.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace tc {
namespace {

using testutil::DatasetFixture;
using testutil::SmallOptions;

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }

DatasetOptions WithSecondary(SchemaMode mode) {
  DatasetOptions o = SmallOptions(mode);
  o.secondary_index_field = "ts";
  return o;
}

TEST(SecondaryIndex, RangeScanReturnsMatchingPks) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(WithSecondary(SchemaMode::kInferred), 2).ok());
  for (int64_t i = 0; i < 50; ++i) {
    AdmValue rec = AdmValue::Object();
    rec.AddField("id", AdmValue::BigInt(i));
    rec.AddField("ts", AdmValue::BigInt(1000 + i * 10));
    rec.AddField("v", AdmValue::String("x"));
    ASSERT_TRUE(fx.dataset->Insert(rec).ok());
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  auto pks = fx.dataset->SecondaryRangeScan(1100, 1190).ValueOrDie();
  std::sort(pks.begin(), pks.end());
  ASSERT_EQ(pks.size(), 10u);
  EXPECT_EQ(pks.front(), 10);
  EXPECT_EQ(pks.back(), 19);
}

TEST(SecondaryIndex, UpdateMovesEntry) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(WithSecondary(SchemaMode::kInferred), 1).ok());
  ASSERT_TRUE(fx.dataset->Insert(R(R"({"id": 1, "ts": 100})")).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  ASSERT_TRUE(fx.dataset->Upsert(R(R"({"id": 1, "ts": 900})")).ok());
  EXPECT_TRUE(fx.dataset->SecondaryRangeScan(50, 150).ValueOrDie().empty());
  auto pks = fx.dataset->SecondaryRangeScan(850, 950).ValueOrDie();
  ASSERT_EQ(pks.size(), 1u);
  EXPECT_EQ(pks[0], 1);
}

TEST(SecondaryIndex, DeleteRemovesEntry) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(WithSecondary(SchemaMode::kInferred), 1).ok());
  ASSERT_TRUE(fx.dataset->Insert(R(R"({"id": 7, "ts": 500})")).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  ASSERT_TRUE(fx.dataset->Delete(7).ok());
  EXPECT_TRUE(fx.dataset->SecondaryRangeScan(0, 1000).ValueOrDie().empty());
}

TEST(SecondaryIndex, DuplicateSecondaryKeysAllowed) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(WithSecondary(SchemaMode::kInferred), 1).ok());
  for (int64_t i = 0; i < 5; ++i) {
    AdmValue rec = AdmValue::Object();
    rec.AddField("id", AdmValue::BigInt(i));
    rec.AddField("ts", AdmValue::BigInt(42));  // same secondary key
    ASSERT_TRUE(fx.dataset->Insert(rec).ok());
  }
  auto pks = fx.dataset->SecondaryRangeScan(42, 42).ValueOrDie();
  EXPECT_EQ(pks.size(), 5u);
}

TEST(SecondaryIndex, SelectivitySweepMatchesScan) {
  // The Figure 24 access path: secondary range scan + primary point lookups
  // must agree with a full-scan filter, across selectivities.
  DatasetFixture fx;
  DatasetOptions o = WithSecondary(SchemaMode::kInferred);
  o.secondary_index_field = "timestamp_ms";
  ASSERT_TRUE(fx.Open(std::move(o), 2).ok());
  auto gen = MakeTwitterGenerator(21);
  std::vector<std::pair<int64_t, int64_t>> pk_ts;
  for (int i = 0; i < 200; ++i) {
    AdmValue rec = gen->NextRecord();
    pk_ts.emplace_back(rec.FindField("id")->int_value(),
                       rec.FindField("timestamp_ms")->int_value());
    ASSERT_TRUE(fx.dataset->Insert(rec).ok());
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  int64_t lo_ts = pk_ts.front().second;
  int64_t hi_ts = pk_ts.back().second;
  for (double sel : {0.01, 0.1, 0.5}) {
    int64_t hi = lo_ts + static_cast<int64_t>((hi_ts - lo_ts) * sel);
    auto pks = fx.dataset->SecondaryRangeScan(lo_ts, hi).ValueOrDie();
    size_t expected = 0;
    for (const auto& [pk, ts] : pk_ts) {
      if (ts >= lo_ts && ts <= hi) ++expected;
    }
    EXPECT_EQ(pks.size(), expected) << "sel=" << sel;
    // Every returned pk resolves through the primary index.
    for (int64_t pk : pks) {
      EXPECT_TRUE(fx.dataset->Get(pk).ValueOrDie().has_value());
    }
  }
}

TEST(SecondaryIndex, MissingFieldRejected) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(WithSecondary(SchemaMode::kInferred), 1).ok());
  EXPECT_FALSE(fx.dataset->Insert(R(R"({"id": 1, "other": 5})")).ok());
}

TEST(SecondaryIndex, RangeScanWithoutIndexFails) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred), 1).ok());
  EXPECT_FALSE(fx.dataset->SecondaryRangeScan(0, 10).ok());
}

}  // namespace
}  // namespace tc
