#include <gtest/gtest.h>

#include "adm/printer.h"
#include "format/vector_format.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace tc {
namespace {

TEST(Workloads, Deterministic) {
  for (const char* name : {"twitter", "wos", "sensors"}) {
    auto a = MakeGenerator(name, 99);
    auto b = MakeGenerator(name, 99);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(PrintAdm(a->NextRecord()), PrintAdm(b->NextRecord())) << name;
    }
    auto c = MakeGenerator(name, 100);
    EXPECT_NE(PrintAdm(MakeGenerator(name, 99)->NextRecord()),
              PrintAdm(c->NextRecord()));
  }
}

TEST(Workloads, MonotonicPrimaryKeys) {
  for (const char* name : {"twitter", "wos", "sensors"}) {
    auto gen = MakeGenerator(name, 1);
    int64_t prev = -1;
    for (int i = 0; i < 50; ++i) {
      AdmValue rec = gen->NextRecord();
      const AdmValue* id = rec.FindField("id");
      ASSERT_NE(id, nullptr);
      EXPECT_GT(id->int_value(), prev);
      prev = id->int_value();
    }
  }
}

TEST(Twitter, MatchesTable1Characteristics) {
  auto gen = MakeTwitterGenerator(7);
  size_t total_bytes = 0;
  size_t total_scalars = 0;
  size_t max_depth = 0;
  const int kN = 200;
  DatasetType open = gen->OpenType();
  for (int i = 0; i < kN; ++i) {
    AdmValue rec = gen->NextRecord();
    total_scalars += rec.CountScalars();
    max_depth = std::max(max_depth, rec.Depth());
    total_bytes += PrintAdm(rec).size();
    // Monotonic timestamps for the Figure 24 secondary index.
    ASSERT_NE(rec.FindField("timestamp_ms"), nullptr);
  }
  double avg_bytes = static_cast<double>(total_bytes) / kN;
  double avg_scalars = static_cast<double>(total_scalars) / kN;
  // Paper Table 1: ~2.7 KB records, avg 88 scalars, depth 8. Generators aim
  // for the same order of magnitude.
  EXPECT_GT(avg_bytes, 1200);
  EXPECT_LT(avg_bytes, 5000);
  EXPECT_GT(avg_scalars, 40);
  EXPECT_LT(avg_scalars, 150);
  EXPECT_GE(max_depth, 4u);
}

TEST(Wos, HasUnionTypedFields) {
  auto gen = MakeWosGenerator(11);
  bool saw_object_name = false, saw_array_name = false;
  bool saw_object_addr = false, saw_array_addr = false;
  for (int i = 0; i < 60; ++i) {
    AdmValue rec = gen->NextRecord();
    const AdmValue* name =
        rec.FindField("static_data")->FindField("summary")->FindField("names")
            ->FindField("name");
    ASSERT_NE(name, nullptr);
    if (name->tag() == AdmTag::kObject) saw_object_name = true;
    if (name->tag() == AdmTag::kArray) saw_array_name = true;
    const AdmValue* addr = rec.FindField("static_data")
                               ->FindField("fullrecord_metadata")
                               ->FindField("addresses")
                               ->FindField("address_name");
    if (addr->tag() == AdmTag::kObject) saw_object_addr = true;
    if (addr->tag() == AdmTag::kArray) saw_array_addr = true;
  }
  // Table 1: WoS is the only dataset with union types.
  EXPECT_TRUE(saw_object_name);
  EXPECT_TRUE(saw_array_name);
  EXPECT_TRUE(saw_object_addr);
  EXPECT_TRUE(saw_array_addr);
}

TEST(Wos, UnionAppearsInInferredSchema) {
  auto gen = MakeWosGenerator(13);
  DatasetType type = gen->OpenType();
  Schema schema;
  for (int i = 0; i < 40; ++i) {
    Buffer b;
    ASSERT_TRUE(EncodeVectorRecord(gen->NextRecord(), type, &b).ok());
    ASSERT_TRUE(
        InferVectorRecord(VectorRecordView(b.data(), b.size()), type, &schema).ok());
  }
  EXPECT_NE(schema.ToString().find("union"), std::string::npos);
}

TEST(Sensors, FixedStructure248Scalars) {
  auto gen = MakeSensorsGenerator(17);
  for (int i = 0; i < 10; ++i) {
    AdmValue rec = gen->NextRecord();
    // Table 1: min = max = avg = 248 scalar values, depth 3 (containers).
    // Our Depth() also counts the scalar leaf level: root -> readings ->
    // reading object -> scalar = 4.
    EXPECT_EQ(rec.CountScalars(), 248u);
    EXPECT_EQ(rec.Depth(), 4u);
    EXPECT_EQ(rec.FindField("readings")->size(), 117u);
  }
}

TEST(Sensors, DoublesDominant) {
  auto gen = MakeSensorsGenerator(19);
  AdmValue rec = gen->NextRecord();
  size_t doubles = 0;
  const AdmValue* readings = rec.FindField("readings");
  for (size_t i = 0; i < readings->size(); ++i) {
    if (readings->item(i).FindField("temp")->tag() == AdmTag::kDouble) ++doubles;
  }
  EXPECT_EQ(doubles, 117u);
}

TEST(ClosedTypes, DeclareTheGeneratedFields) {
  // Closed descriptors must cover the generated records: encoding under the
  // closed type then matching field sets is exercised in dataset_test; here
  // we sanity-check descriptor shape.
  auto tgen = MakeTwitterGenerator(1);
  DatasetType t = tgen->ClosedType();
  EXPECT_GT(t.root->field_count(), 15u);
  EXPECT_EQ(t.root->DeclaredIndex("id"), 0);
  EXPECT_GE(t.root->DeclaredIndex("entities"), 0);

  auto sgen = MakeSensorsGenerator(1);
  DatasetType s = sgen->ClosedType();
  EXPECT_GE(s.root->DeclaredIndex("readings"), 0);

  auto wgen = MakeWosGenerator(1);
  DatasetType w = wgen->ClosedType();
  // Union-typed fields stay undeclared (open) in WoS, per the paper.
  EXPECT_GE(w.root->DeclaredIndex("static_data"), 0);
}

}  // namespace
}  // namespace tc
