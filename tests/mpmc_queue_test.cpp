#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"

namespace tc {
namespace {

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = -1;
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, PushBlocksUntilSpaceFrees) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(2));  // blocks: queue full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int v = 0;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(MpmcQueue, CloseDrainsQueuedItemsThenReportsClosed) {
  MpmcQueue<int> q(4);
  ASSERT_TRUE(q.Push(7));
  ASSERT_TRUE(q.Push(8));
  q.Close();
  EXPECT_FALSE(q.Push(9));  // rejected after close
  int v = 0;
  ASSERT_TRUE(q.Pop(&v));  // items pushed before close still drain
  EXPECT_EQ(v, 7);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.Pop(&v));  // closed AND drained
}

TEST(MpmcQueue, PopUntilTimesOutAndDistinguishesClose) {
  MpmcQueue<int> q(4);
  int v = 0;
  auto soon = std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_EQ(q.PopUntil(&v, soon), MpmcQueue<int>::PopResult::kTimeout);
  ASSERT_TRUE(q.Push(3));
  EXPECT_EQ(q.PopUntil(&v, soon), MpmcQueue<int>::PopResult::kItem);
  EXPECT_EQ(v, 3);
  q.Close();
  EXPECT_EQ(q.PopUntil(&v, soon), MpmcQueue<int>::PopResult::kClosed);
}

// 4 producers x 4 consumers over a tiny queue: every pushed value is popped
// exactly once, and Close() releases all blocked consumers.
TEST(MpmcQueue, ManyProducersManyConsumersExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  MpmcQueue<int> q(3);
  std::vector<std::thread> threads;
  std::mutex seen_mu;
  std::multiset<int> seen;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v;
      while (q.Pop(&v)) {
        std::lock_guard<std::mutex> lock(seen_mu);
        seen.insert(v);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : threads) t.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(seen.count(i), 1u) << i;
  }
}

}  // namespace
}  // namespace tc
