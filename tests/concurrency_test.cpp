// Concurrency contract of the snapshot read API (ReadView):
//   * point lookups and scans never block on — and are never torn by —
//     concurrent flushes and merges;
//   * a view observes a coherent LSM state (snapshot isolation once its
//     memtable generation is retired, read-committed before);
//   * retired component files are deleted only after the last view
//     referencing them is released (deferred deletion);
//   * merges scheduled on a shared TaskPool produce byte-identical content
//     to inline merges.
// With a pool, trees now also build flushed components on the executor and
// run disjoint merges concurrently, so every pool-backed test here doubles as
// coverage for that pipeline; merge_concurrency_test.cpp carries the
// deterministic >= 2-concurrent-merges and error-injection suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/task_pool.h"
#include "core/ingest.h"
#include "lsm/lsm_tree.h"
#include "tests/test_util.h"

namespace tc {
namespace {

std::string S(const Buffer& b) { return std::string(b.begin(), b.end()); }

std::string VersionedPayload(int64_t key, uint64_t version) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "k%" PRId64 ".v%" PRIu64 ".", key, version);
  // Pad so a handful of writes fills the tiny test memtables.
  return std::string(buf) + std::string(48, 'x');
}

/// Parses "k<key>.v<version>.xxx..." produced above; returns false on any
/// malformed (torn) payload.
bool ParseVersionedPayload(const std::string& s, int64_t* key, uint64_t* version) {
  return std::sscanf(s.c_str(), "k%" PRId64 ".v%" PRIu64 ".", key, version) == 2;
}

struct ConcurrencyFixture {
  std::shared_ptr<FileSystem> fs = MakeMemFileSystem();
  BufferCache cache{4096, 2048};
  // Declared before any tree user so trees (which wait out their scheduled
  // merges on destruction) die first.
  std::unique_ptr<TaskPool> pool;

  std::unique_ptr<LsmTree> Open(size_t memtable_bytes,
                                std::shared_ptr<MergePolicy> policy,
                                bool use_pool, const std::string& name = "t") {
    if (use_pool && pool == nullptr) pool = std::make_unique<TaskPool>(2);
    LsmTreeOptions o;
    o.fs = fs;
    o.cache = &cache;
    o.dir = "lsm";
    o.name = name;
    o.page_size = 4096;
    o.memtable_budget_bytes = memtable_bytes;
    o.merge_policy = std::move(policy);
    o.merge_pool = use_pool ? pool.get() : nullptr;
    o.wal_sync_every = 0;
    return LsmTree::Open(std::move(o)).ValueOrDie();
  }

  /// Number of live ".btree" data files of tree `name` on disk.
  size_t ComponentFilesOnDisk(const std::string& name = "t") {
    auto files = fs->List("lsm", name + ".c").ValueOrDie();
    size_t n = 0;
    for (const auto& f : files) {
      if (f.size() >= 6 && f.compare(f.size() - 6, 6, ".btree") == 0) ++n;
    }
    return n;
  }
};

// N reader threads issue point lookups and full scans while a writer upserts
// ascending versions of a fixed key set, flushing and merging constantly
// (tiny memtable, tiered policy, merges on a shared pool). Every read must
// return a well-formed payload for the requested key with a version that
// never goes backwards (tree state only moves forward, and each Get pins a
// fresh snapshot).
TEST(Concurrency, ReadersNeverTornDuringFlushAndMerge) {
  ConcurrencyFixture fx;
  auto t = fx.Open(2 * 1024, MakeTieredMergePolicy(3, 2), /*use_pool=*/true);
  constexpr int64_t kKeys = 48;
  constexpr uint64_t kRounds = 60;
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(t->Upsert(BtreeKey{k, 0}, VersionedPayload(k, 1), nullptr).ok());
  }

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  auto fail = [&](const char* what) {
    failed.store(true);
    ADD_FAILURE() << what;
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      std::map<int64_t, uint64_t> last_seen;
      while (!done.load(std::memory_order_acquire) && !failed.load()) {
        int64_t k = static_cast<int64_t>(rng.Uniform(kKeys));
        auto got = t->Get(BtreeKey{k, 0});
        if (!got.ok() || !got.value().has_value()) return fail("lookup lost a key");
        int64_t pk = -1;
        uint64_t pv = 0;
        if (!ParseVersionedPayload(S(*got.value()), &pk, &pv) || pk != k) {
          return fail("torn or misdirected payload");
        }
        uint64_t& floor = last_seen[k];
        if (pv < floor) return fail("version went backwards");
        floor = pv;
      }
    });
  }
  std::thread scanner([&] {
    while (!done.load(std::memory_order_acquire) && !failed.load()) {
      LsmTree::Iterator it(t.get());
      if (!it.SeekToFirst().ok()) return fail("seek failed");
      int64_t prev = -1;
      size_t n = 0;
      while (it.Valid()) {
        if (it.key().a <= prev) return fail("scan keys not strictly increasing");
        prev = it.key().a;
        int64_t pk = -1;
        uint64_t pv = 0;
        if (!ParseVersionedPayload(std::string(it.payload()), &pk, &pv) ||
            pk != it.key().a) {
          return fail("scan surfaced a torn payload");
        }
        ++n;
        if (!it.Next().ok()) return fail("next failed");
      }
      if (n != kKeys) return fail("scan lost or duplicated keys");
    }
  });

  for (uint64_t v = 2; v <= kRounds && !failed.load(); ++v) {
    for (int64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(t->Upsert(BtreeKey{k, 0}, VersionedPayload(k, v), nullptr).ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  scanner.join();
  ASSERT_FALSE(failed.load());

  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->WaitForMerges().ok());
  LsmStats stats = t->stats();
  EXPECT_GT(stats.merge_count, 0u);
  // The whole run went through the pooled pipeline: every flush was queued
  // as a sealed generation (never built on the writer thread).
  EXPECT_GE(stats.flush_queue_high_water, 1u);
  for (int64_t k = 0; k < kKeys; ++k) {
    auto got = t->Get(BtreeKey{k, 0}).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(S(*got), VersionedPayload(k, kRounds)) << k;
  }
}

// A view pinned before a merge keeps the merge inputs' files alive and
// readable; the files disappear exactly when the last reference releases.
TEST(Concurrency, DeferredDeletionWaitsForLastView) {
  ConcurrencyFixture fx;
  auto t = fx.Open(1 << 20, MakeConstantMergePolicy(2), /*use_pool=*/false);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      int64_t k = round * 4 + i;
      ASSERT_TRUE(t->Insert(BtreeKey{k, 0}, "r" + std::to_string(round)).ok());
    }
    ASSERT_TRUE(t->Flush().ok());
  }
  ASSERT_EQ(t->component_count(), 2u);
  ASSERT_EQ(fx.ComponentFilesOnDisk(), 2u);

  // Pin the pre-merge structure.
  auto pinned = t->AcquireView();
  ASSERT_EQ(pinned->component_count(), 2u);

  // Third flush trips constant(2): everything merges into one component and
  // the three inputs retire. The two components `pinned` references must
  // SURVIVE; the third input (flushed after the pin, so referenced by nobody)
  // reclaims immediately.
  for (int i = 8; i < 12; ++i) {
    ASSERT_TRUE(t->Insert(BtreeKey{i, 0}, "r2").ok());
  }
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_EQ(t->component_count(), 1u);
  EXPECT_EQ(fx.ComponentFilesOnDisk(), 3u);  // 1 live + 2 retired-but-pinned

  // The pinned snapshot still resolves lookups from the retired components.
  EXPECT_EQ(S(*pinned->Get(BtreeKey{0, 0}).ValueOrDie()), "r0");
  EXPECT_EQ(S(*pinned->Get(BtreeKey{7, 0}).ValueOrDie()), "r1");
  // The r2 writes landed in the generation `pinned` had pinned while it was
  // still live, so they are visible (read-committed in memory) even though
  // the view never sees the post-pin component structure.
  EXPECT_EQ(S(*pinned->Get(BtreeKey{9, 0}).ValueOrDie()), "r2");
  EXPECT_TRUE(t->Get(BtreeKey{9, 0}).ValueOrDie().has_value());

  // Last reference gone -> deferred deletion reclaims the three inputs.
  pinned.reset();
  EXPECT_EQ(fx.ComponentFilesOnDisk(), 1u);
  EXPECT_EQ(S(*t->Get(BtreeKey{0, 0}).ValueOrDie()), "r0");
}

// The documented visibility contract: a view sees writes committed before
// acquisition, plus writes into its still-live memtable generation; a flush
// freezes it for good.
TEST(Concurrency, ViewFreezesWhenItsGenerationRetires) {
  ConcurrencyFixture fx;
  auto t = fx.Open(1 << 20, MakeNoMergePolicy(), /*use_pool=*/false);
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "one").ok());
  auto view = t->AcquireView();
  EXPECT_EQ(S(*view->Get(BtreeKey{1, 0}).ValueOrDie()), "one");

  // Same generation, still live: read-committed visibility.
  ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "two").ok());
  EXPECT_EQ(S(*view->Get(BtreeKey{2, 0}).ValueOrDie()), "two");

  // Flush retires the generation; later writes are invisible to the view.
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->Insert(BtreeKey{3, 0}, "three").ok());
  ASSERT_TRUE(t->Delete(BtreeKey{1, 0}, nullptr).ok());
  EXPECT_FALSE(view->Get(BtreeKey{3, 0}).ValueOrDie().has_value());
  EXPECT_EQ(S(*view->Get(BtreeKey{1, 0}).ValueOrDie()), "one");  // pre-delete
  EXPECT_FALSE(t->Get(BtreeKey{1, 0}).ValueOrDie().has_value());

  // Iterators over the frozen view share its state.
  LsmTree::Iterator it(view);
  ASSERT_TRUE(it.SeekToFirst().ok());
  std::vector<int64_t> keys;
  while (it.Valid()) {
    keys.push_back(it.key().a);
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2}));
}

// Pool-scheduled merges must be semantically invisible: randomized
// upsert/delete churn against an in-memory model, then every key and a full
// scan agree with the model once the background work drains.
TEST(Concurrency, PoolMergesMatchModelUnderChurn) {
  ConcurrencyFixture fx;
  auto t = fx.Open(2 * 1024, MakeTieredMergePolicy(3, 2), /*use_pool=*/true);
  std::map<int64_t, std::string> model;
  Rng rng(4242);
  for (int op = 0; op < 3000; ++op) {
    int64_t key = static_cast<int64_t>(rng.Uniform(150));
    if (rng.Bernoulli(0.75)) {
      std::string v = "v" + std::to_string(op) + "_" + rng.AlphaString(rng.Uniform(30));
      ASSERT_TRUE(t->Upsert(BtreeKey{key, 0}, v, nullptr).ok());
      model[key] = v;
    } else {
      ASSERT_TRUE(t->Delete(BtreeKey{key, 0}, nullptr).ok());
      model.erase(key);
    }
  }
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->WaitForMerges().ok());
  EXPECT_GT(t->stats().merge_count, 0u);

  for (int64_t k = 0; k < 150; ++k) {
    auto got = t->Get(BtreeKey{k, 0}).ValueOrDie();
    auto it = model.find(k);
    if (it == model.end()) {
      EXPECT_FALSE(got.has_value()) << k;
    } else {
      ASSERT_TRUE(got.has_value()) << k;
      EXPECT_EQ(S(*got), it->second) << k;
    }
  }
  LsmTree::Iterator it(t.get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  auto mit = model.begin();
  while (it.Valid() && mit != model.end()) {
    EXPECT_EQ(it.key().a, mit->first);
    EXPECT_EQ(std::string(it.payload()), mit->second);
    ASSERT_TRUE(it.Next().ok());
    ++mit;
  }
  EXPECT_FALSE(it.Valid());
  EXPECT_EQ(mit, model.end());
}

// End-to-end reclamation under reader/writer churn: once the dust settles and
// every view is gone, the files on disk are exactly the live components'.
TEST(Concurrency, AllRetiredFilesEventuallyReclaimed) {
  ConcurrencyFixture fx;
  auto t = fx.Open(2 * 1024, MakeTieredMergePolicy(3, 2), /*use_pool=*/true);
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(77 + r);
      while (!done.load(std::memory_order_acquire)) {
        // Hold snapshots across several lookups so merges retire components
        // under live pins.
        auto view = t->AcquireView();
        for (int i = 0; i < 16; ++i) {
          auto got = view->Get(BtreeKey{static_cast<int64_t>(rng.Uniform(200)), 0});
          if (!got.ok()) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  std::string payload(64, 'p');
  for (int i = 0; i < 1200; ++i) {
    ASSERT_TRUE(t->Upsert(BtreeKey{i % 200, 0}, payload, nullptr).ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  ASSERT_FALSE(failed.load());
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->WaitForMerges().ok());
  EXPECT_GT(t->stats().merge_count, 0u);
  // All views are gone; a final snapshot acquire/release drains leftovers.
  t->View();
  EXPECT_EQ(fx.ComponentFilesOnDisk(), t->component_count());
}

// DestroyAll defers deletion of pinned components instead of yanking files
// out from under live snapshots.
TEST(Concurrency, DestroyAllRespectsLiveViews) {
  ConcurrencyFixture fx;
  auto t = fx.Open(1 << 20, MakeNoMergePolicy(), /*use_pool=*/false);
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "keep").ok());
  ASSERT_TRUE(t->Flush().ok());
  auto pinned = t->AcquireView();
  ASSERT_TRUE(t->DestroyAll().ok());
  // The tree is empty, but the pinned snapshot still reads its component.
  EXPECT_EQ(t->component_count(), 0u);
  EXPECT_EQ(fx.ComponentFilesOnDisk(), 1u);
  EXPECT_EQ(S(*pinned->Get(BtreeKey{1, 0}).ValueOrDie()), "keep");
  pinned.reset();
  EXPECT_EQ(fx.ComponentFilesOnDisk(), 0u);
}

// Point-lookup storm against concurrent flushes and merges with per-component
// bloom filters: miss-heavy readers hammer the filter fast path while the
// writer constantly retires components under them. Filters ride inside the
// components a view pins, so a pinned filter must stay valid (and keep giving
// correct answers) even after its component retires into the reclaimer.
TEST(Concurrency, FilteredLookupStormDuringFlushAndMerge) {
  ConcurrencyFixture fx;
  auto t = fx.Open(2 * 1024, MakeTieredMergePolicy(3, 2), /*use_pool=*/true);
  constexpr int64_t kKeys = 64;  // even keys present, odd keys always absent
  constexpr uint64_t kRounds = 40;
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(
        t->Upsert(BtreeKey{2 * k, 0}, VersionedPayload(2 * k, 1), nullptr).ok());
  }

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  auto fail = [&](const char* what) {
    failed.store(true);
    ADD_FAILURE() << what;
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(9000 + r);
      while (!done.load(std::memory_order_acquire) && !failed.load()) {
        // Hold each view across a batch of lookups so merges retire filtered
        // components while the view still pins them.
        auto view = t->AcquireView();
        for (int i = 0; i < 24; ++i) {
          int64_t k = static_cast<int64_t>(rng.Uniform(2 * kKeys));
          auto got = view->Get(BtreeKey{k, 0});
          if (!got.ok()) return fail("lookup errored under churn");
          if (k % 2 != 0) {
            if (got.value().has_value()) return fail("filter invented a key");
            continue;
          }
          if (!got.value().has_value()) return fail("lookup lost a present key");
          int64_t pk = -1;
          uint64_t pv = 0;
          if (!ParseVersionedPayload(S(*got.value()), &pk, &pv) || pk != k) {
            return fail("torn payload through the filter fast path");
          }
        }
      }
    });
  }

  for (uint64_t v = 2; v <= kRounds && !failed.load(); ++v) {
    for (int64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(
          t->Upsert(BtreeKey{2 * k, 0}, VersionedPayload(2 * k, v), nullptr)
              .ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  ASSERT_FALSE(failed.load());

  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->WaitForMerges().ok());
  LsmStats stats = t->stats();
  EXPECT_GT(stats.merge_count, 0u);
  // The storm actually exercised the filters: probes happened, and the odd
  // keys were overwhelmingly answered without touching any component B-tree.
  EXPECT_GT(stats.filter_checks, 0u);
  EXPECT_GT(stats.filter_negatives, 0u);
  for (int64_t k = 0; k < kKeys; ++k) {
    auto got = t->Get(BtreeKey{2 * k, 0}).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(S(*got), VersionedPayload(2 * k, kRounds)) << k;
  }
}

// A view pinned BEFORE a merge keeps using the retired components' filters
// after the merge installs and the inputs move to the reclaimer: lookups
// through the pinned view stay correct and still consult filters.
TEST(Concurrency, PinnedViewKeepsRetiredFiltersValid) {
  ConcurrencyFixture fx;
  auto t = fx.Open(1 << 20, MakeConstantMergePolicy(2), /*use_pool=*/false);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 8; ++i) {
      int64_t k = round * 8 + i;
      ASSERT_TRUE(t->Insert(BtreeKey{k, 0}, "r" + std::to_string(round)).ok());
    }
    ASSERT_TRUE(t->Flush().ok());
  }
  auto pinned = t->AcquireView();
  ASSERT_EQ(pinned->component_count(), 2u);
  for (size_t i = 0; i < pinned->component_count(); ++i) {
    ASSERT_TRUE(pinned->components()[i]->has_filter());
  }

  // Trip the merge: both inputs retire into the reclaimer, held only by the
  // pinned view.
  for (int i = 16; i < 20; ++i) {
    ASSERT_TRUE(t->Insert(BtreeKey{i, 0}, "r2").ok());
  }
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_EQ(t->component_count(), 1u);

  uint64_t checks_before = t->stats().filter_checks;
  // Present keys resolve through the retired components' filters...
  EXPECT_EQ(S(*pinned->Get(BtreeKey{0, 0}).ValueOrDie()), "r0");
  EXPECT_EQ(S(*pinned->Get(BtreeKey{15, 0}).ValueOrDie()), "r1");
  // ...and in-fence misses are still pruned by them ({3,1} sorts between the
  // present keys {3,0} and {4,0}, so fences cannot shortcut it).
  EXPECT_FALSE(pinned->Get(BtreeKey{3, 1}).ValueOrDie().has_value());
  EXPECT_GT(t->stats().filter_checks, checks_before);

  pinned.reset();
  EXPECT_EQ(fx.ComponentFilesOnDisk(), 1u);
}

// Ingest storm through the group-committing feed queue: 4 producers submit
// whole batches to an IngestFrontEnd targeting one partition (so batch ==
// commit chunk) while readers range-scan individual batches on pinned
// snapshots and flush builds + merges run on a shared pool. Every batch is
// applied in ONE memtable critical section and never split across
// generations, and an Iterator copies the in-memory entries at seek time —
// so a scan must observe each batch either completely or not at all.
TEST(Concurrency, IngestStormWholeBatchVisibility) {
  TaskPool pool(3);
  testutil::DatasetFixture fx;
  DatasetOptions o = testutil::SmallOptions(SchemaMode::kInferred, /*memtable_kb=*/32);
  o.merge_pool = &pool;
  ASSERT_TRUE(fx.Open(std::move(o), 1).ok());

  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 24;
  constexpr int kBatch = 32;
  constexpr int kTotalBatches = kProducers * kBatchesPerProducer;

  GroupCommitConfig gc;
  gc.max_records = 64;  // groups span a couple of chunks
  gc.max_usecs = 500;
  IngestFrontEnd front_end(fx.dataset.get(), gc, /*queue_capacity=*/2);

  std::atomic<bool> done{false};
  std::atomic<int> torn_batches{0};
  std::atomic<int> producer_failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + static_cast<uint64_t>(r));
      while (!done.load(std::memory_order_acquire)) {
        int64_t b = static_cast<int64_t>(rng.Uniform(kTotalBatches));
        int64_t lo = b * kBatch;
        int64_t hi = lo + kBatch - 1;
        auto view = fx.dataset->partition(0)->primary()->AcquireView();
        LsmTree::Iterator it(view);
        it.set_upper_bound(BtreeKey{hi, 0});
        if (!it.Seek(BtreeKey{lo, 0}).ok()) continue;
        int count = 0;
        while (it.Valid() && it.key().a <= hi) {
          ++count;
          if (!it.Next().ok()) break;
        }
        if (count != 0 && count != kBatch) torn_batches.fetch_add(1);
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(static_cast<uint64_t>(p));
      std::vector<IngestTicket> outstanding;
      for (int i = 0; i < kBatchesPerProducer; ++i) {
        int64_t b = p * kBatchesPerProducer + i;
        std::vector<AdmValue> batch;
        batch.reserve(kBatch);
        for (int64_t k = b * kBatch; k < (b + 1) * kBatch; ++k) {
          AdmValue rec = AdmValue::Object();
          rec.AddField("id", AdmValue::BigInt(k));
          rec.AddField("pad", AdmValue::String(rng.AlphaString(40)));
          batch.push_back(std::move(rec));
        }
        outstanding.push_back(front_end.Submit(std::move(batch)));
        if (outstanding.size() >= 3) {
          if (!outstanding.front().Wait().ok()) producer_failures.fetch_add(1);
          outstanding.erase(outstanding.begin());
        }
      }
      for (auto& t : outstanding) {
        if (!t.Wait().ok()) producer_failures.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(front_end.Drain().ok());
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn_batches.load(), 0);
  EXPECT_EQ(producer_failures.load(), 0);
  // Completeness: every record of every acknowledged batch is in the dataset.
  for (int64_t k = 0; k < static_cast<int64_t>(kTotalBatches) * kBatch; ++k) {
    ASSERT_TRUE(fx.dataset->Get(k).ValueOrDie().has_value()) << k;
  }
  ASSERT_TRUE(fx.dataset->WaitForBackgroundWork().ok());
}

}  // namespace
}  // namespace tc
