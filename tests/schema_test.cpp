#include <gtest/gtest.h>

#include "adm/parser.h"
#include "schema/inference.h"
#include "schema/schema_io.h"
#include "schema/schema_tree.h"
#include "tests/test_util.h"

namespace tc {
namespace {

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }

DatasetType PkType() { return DatasetType::OpenWithPk("id"); }

// Order-insensitive rendering: object fields sorted by name, union variants
// sorted by rendered form.
void RenderCanonical(const SchemaNode* n, const FieldNameDictionary& dict,
                     std::string* out) {
  if (n == nullptr) {
    *out += "<null>";
    return;
  }
  switch (n->tag()) {
    case AdmTag::kObject: {
      std::vector<std::string> fields;
      for (size_t i = 0; i < n->field_count(); ++i) {
        std::string f = dict.NameOf(n->field_id(i)) + ":";
        RenderCanonical(n->field_node(i), dict, &f);
        fields.push_back(std::move(f));
      }
      std::sort(fields.begin(), fields.end());
      *out += "{";
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += fields[i];
      }
      *out += "}(" + std::to_string(n->count()) + ")";
      return;
    }
    case AdmTag::kArray:
    case AdmTag::kMultiset:
      *out += AdmTagName(n->tag());
      *out += "(" + std::to_string(n->count()) + ")<";
      RenderCanonical(n->item(), dict, out);
      *out += ">";
      return;
    case AdmTag::kUnion: {
      std::vector<std::string> variants;
      for (size_t i = 0; i < n->variant_count(); ++i) {
        std::string v;
        RenderCanonical(n->variant(i), dict, &v);
        variants.push_back(std::move(v));
      }
      std::sort(variants.begin(), variants.end());
      *out += "union(" + std::to_string(n->count()) + ")<";
      for (size_t i = 0; i < variants.size(); ++i) {
        if (i > 0) *out += "|";
        *out += variants[i];
      }
      *out += ">";
      return;
    }
    default:
      *out += AdmTagName(n->tag());
      *out += "(" + std::to_string(n->count()) + ")";
  }
}

std::string CanonicalSchemaString(const Schema& s) {
  std::string out;
  RenderCanonical(s.root(), s.dict(), &out);
  return out;
}

TEST(Dictionary, AssignsStableIds) {
  FieldNameDictionary d;
  EXPECT_EQ(d.GetOrAdd("name"), 1u);
  EXPECT_EQ(d.GetOrAdd("age"), 2u);
  EXPECT_EQ(d.GetOrAdd("name"), 1u);
  EXPECT_EQ(d.Lookup("age"), 2u);
  EXPECT_EQ(d.Lookup("zzz"), FieldNameDictionary::kInvalidId);
  EXPECT_EQ(d.NameOf(1), "name");
  EXPECT_EQ(d.size(), 2u);
}

TEST(Dictionary, SerializeRoundTrip) {
  FieldNameDictionary d;
  d.GetOrAdd("alpha");
  d.GetOrAdd("beta");
  d.GetOrAdd("");
  Buffer buf;
  d.Serialize(&buf);
  size_t consumed = 0;
  auto r = FieldNameDictionary::Deserialize(buf.data(), buf.size(), &consumed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(consumed, buf.size());
  EXPECT_TRUE(r.value() == d);
}

TEST(Inference, PaperFigure9Flow) {
  // Figure 9a: two records {id, name, age:int} -> name:string, age:int.
  DatasetType type = PkType();
  Schema schema;
  ASSERT_TRUE(InferRecord(&schema, R(R"({"id": 0, "name": "Kim", "age": 26})"),
                          type.root.get())
                  .ok());
  ASSERT_TRUE(InferRecord(&schema, R(R"({"id": 1, "name": "John", "age": 22})"),
                          type.root.get())
                  .ok());
  EXPECT_EQ(schema.ToString(), "{name:string(2), age:bigint(2)}(2)");

  // Figure 9b: age missing, then age:string -> age becomes union(int,string).
  ASSERT_TRUE(InferRecord(&schema, R(R"({"id": 2, "name": "Ann"})"),
                          type.root.get())
                  .ok());
  ASSERT_TRUE(InferRecord(&schema, R(R"({"id": 3, "name": "Bob", "age": "old"})"),
                          type.root.get())
                  .ok());
  EXPECT_EQ(schema.ToString(),
            "{name:string(4), age:union(3)<bigint(2)|string(1)>}(4)");
}

TEST(Inference, DeclaredFieldsExcluded) {
  DatasetType type = PkType();
  Schema schema;
  ASSERT_TRUE(
      InferRecord(&schema, R(R"({"id": 7, "x": 1})"), type.root.get()).ok());
  // "id" must not appear in the inferred schema (paper §3.1.1).
  EXPECT_EQ(schema.ToString(), "{x:bigint(1)}(1)");
}

TEST(Inference, NestedCountersMatchPaperFigure10) {
  DatasetType type = PkType();
  Schema schema;
  ASSERT_TRUE(InferRecord(&schema, R(R"({
    "id": 1, "name": "Ann",
    "dependents": {{ {"name": "Bob", "age": 6}, {"name": "Carol", "age": 10} }},
    "employment_date": date("2018-09-20"),
    "branch_location": point(24.0, -56.12),
    "working_shifts": [[8, 16], [9, 17], [10, 18], "on_call"]
  })"),
                          type.root.get())
                  .ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(InferRecord(&schema,
                            R(R"({"id": )" + std::to_string(10 + i) +
                              R"(, "name": "n"})"),
                            type.root.get())
                    .ok());
  }
  // Counters from Figure 10b: name(6), dependents(1) with object(2) items
  // whose fields name(2)/age(2); working_shifts(1) items union(4) of
  // array(3)<int(9)> and string(1).
  const SchemaNode* root = schema.root();
  EXPECT_EQ(root->count(), 6u);
  const SchemaNode* name = root->FindField(schema.dict().Lookup("name"));
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->count(), 6u);
  const SchemaNode* deps = root->FindField(schema.dict().Lookup("dependents"));
  ASSERT_NE(deps, nullptr);
  EXPECT_EQ(deps->tag(), AdmTag::kMultiset);
  EXPECT_EQ(deps->count(), 1u);
  EXPECT_EQ(deps->item()->count(), 2u);
  const SchemaNode* shifts =
      root->FindField(schema.dict().Lookup("working_shifts"));
  ASSERT_NE(shifts, nullptr);
  const SchemaNode* item = shifts->item();
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->tag(), AdmTag::kUnion);
  EXPECT_EQ(item->count(), 4u);
  const SchemaNode* arr = item->FindVariant(AdmTag::kArray);
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->count(), 3u);
  EXPECT_EQ(arr->item()->count(), 6u);  // six ints across the three sub-arrays
  const SchemaNode* str = item->FindVariant(AdmTag::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->count(), 1u);
}

TEST(AntiSchema, DeleteShrinksSchemaLikeFigure11) {
  DatasetType type = PkType();
  Schema schema;
  AdmValue big = R(R"({
    "id": 1, "name": "Ann",
    "dependents": {{ {"name": "Bob", "age": 6} }},
    "branch_location": point(1.0, 2.0)
  })");
  ASSERT_TRUE(InferRecord(&schema, big, type.root.get()).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(InferRecord(&schema,
                            R(R"({"id": )" + std::to_string(10 + i) +
                              R"(, "name": "x"})"),
                            type.root.get())
                    .ok());
  }
  // Deleting the rich record leaves only name(5) (paper Figure 11).
  ASSERT_TRUE(RemoveRecord(&schema, big, type.root.get()).ok());
  EXPECT_EQ(schema.ToString(), "{name:string(5)}(5)");
}

TEST(AntiSchema, UnionCollapsesWhenVariantDies) {
  DatasetType type = PkType();
  Schema schema;
  AdmValue int_rec = R(R"({"id": 1, "age": 26})");
  AdmValue str_rec = R(R"({"id": 2, "age": "old"})");
  ASSERT_TRUE(InferRecord(&schema, int_rec, type.root.get()).ok());
  ASSERT_TRUE(InferRecord(&schema, str_rec, type.root.get()).ok());
  EXPECT_EQ(schema.ToString(), "{age:union(2)<bigint(1)|string(1)>}(2)");
  // Deleting the only string-typed age collapses union(int,string) -> int
  // (paper §3.2.2's motivating example).
  ASSERT_TRUE(RemoveRecord(&schema, str_rec, type.root.get()).ok());
  EXPECT_EQ(schema.ToString(), "{age:bigint(1)}(1)");
  ASSERT_TRUE(RemoveRecord(&schema, int_rec, type.root.get()).ok());
  EXPECT_EQ(schema.ToString(), "{}(0)");
}

TEST(AntiSchema, MismatchIsCorruption) {
  DatasetType type = PkType();
  Schema schema;
  ASSERT_TRUE(InferRecord(&schema, R(R"({"id": 1, "a": 5})"), type.root.get()).ok());
  Status st = RemoveRecord(&schema, R(R"({"id": 1, "b": 5})"), type.root.get());
  EXPECT_TRUE(st.IsCorruption());
  st = RemoveRecord(&schema, R(R"({"id": 1, "a": "str"})"), type.root.get());
  EXPECT_TRUE(st.IsCorruption());
}

TEST(AntiSchema, PropertyAddRemoveReturnsToEmpty) {
  DatasetType type = PkType();
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    Schema schema;
    std::vector<AdmValue> records;
    for (int i = 0; i < 30; ++i) {
      records.push_back(testutil::RandomRecord(&rng, i));
      ASSERT_TRUE(InferRecord(&schema, records.back(), type.root.get()).ok());
    }
    // Remove in random order; schema must return to empty.
    while (!records.empty()) {
      size_t i = rng.Uniform(records.size());
      ASSERT_TRUE(RemoveRecord(&schema, records[i], type.root.get()).ok());
      records.erase(records.begin() + static_cast<ptrdiff_t>(i));
    }
    EXPECT_EQ(schema.ToString(), "{}(0)");
    EXPECT_EQ(schema.root()->SubtreeSize(), 1u);
  }
}

TEST(AntiSchema, PartialRemovalMatchesFreshInference) {
  // Removing a subset must leave the same structure as inferring the rest.
  DatasetType type = PkType();
  Rng rng(7);
  std::vector<AdmValue> records;
  for (int i = 0; i < 40; ++i) records.push_back(testutil::RandomRecord(&rng, i));

  Schema full;
  for (const auto& r : records) {
    ASSERT_TRUE(InferRecord(&full, r, type.root.get()).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(RemoveRecord(&full, records[static_cast<size_t>(i)],
                             type.root.get())
                    .ok());
  }
  Schema fresh;
  for (int i = 20; i < 40; ++i) {
    ASSERT_TRUE(InferRecord(&fresh, records[static_cast<size_t>(i)],
                            type.root.get())
                    .ok());
  }
  // Tree structure and counters agree up to ordering: union variants and
  // object fields are kept in first-seen order, which differs between the
  // remove-then-reuse history and fresh inference. Compare canonically.
  EXPECT_EQ(CanonicalSchemaString(full), CanonicalSchemaString(fresh));
}

TEST(SchemaIo, SerializeRoundTrip) {
  DatasetType type = PkType();
  Rng rng(5);
  Schema schema;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(InferRecord(&schema, testutil::RandomRecord(&rng, i),
                            type.root.get())
                    .ok());
  }
  Buffer blob;
  SerializeSchema(schema, &blob);
  size_t consumed = 0;
  auto restored = DeserializeSchema(blob.data(), blob.size(), &consumed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(consumed, blob.size());
  EXPECT_TRUE(restored.value().Equals(schema));
  EXPECT_EQ(restored.value().ToString(), schema.ToString());
  EXPECT_EQ(restored.value().version(), schema.version());
}

TEST(SchemaIo, CorruptionDetected) {
  Schema schema;
  DatasetType type = PkType();
  ASSERT_TRUE(InferRecord(&schema, R(R"({"id":1,"a":2})"), type.root.get()).ok());
  Buffer blob;
  SerializeSchema(schema, &blob);
  size_t consumed;
  // Bad magic.
  Buffer bad = blob;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeSchema(bad.data(), bad.size(), &consumed).ok());
  // Truncation.
  EXPECT_FALSE(DeserializeSchema(blob.data(), blob.size() / 2, &consumed).ok());
}

TEST(SchemaTree, CloneIsDeepAndEqual) {
  DatasetType type = PkType();
  Schema schema;
  ASSERT_TRUE(InferRecord(&schema,
                          R(R"({"id":1,"a":{"b":[1,"x"]},"c":2.5})"),
                          type.root.get())
                  .ok());
  Schema copy = schema.Clone();
  EXPECT_TRUE(copy.Equals(schema));
  // Mutating the copy must not affect the original.
  ASSERT_TRUE(InferRecord(&copy, R(R"({"id":2,"zzz":1})"), type.root.get()).ok());
  EXPECT_FALSE(copy.Equals(schema));
}

}  // namespace
}  // namespace tc
