#include <gtest/gtest.h>

#include "query/paper_queries.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace tc {
namespace {

using testutil::DatasetFixture;
using testutil::SmallOptions;

struct QueryFixture {
  DatasetFixture fx;

  void Load(SchemaMode mode, const std::string& workload, int n,
            size_t partitions = 2) {
    DatasetOptions o = SmallOptions(mode, 256);
    auto gen = MakeGenerator(workload, 1234);
    if (mode == SchemaMode::kClosed) o.type = gen->ClosedType();
    ASSERT_TRUE(fx.Open(std::move(o), partitions).ok());
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(fx.dataset->Insert(gen->NextRecord()).ok());
    }
    ASSERT_TRUE(fx.dataset->FlushAll().ok());
  }
};

TEST(Operators, ScanCountsEverything) {
  QueryFixture q;
  q.Load(SchemaMode::kInferred, "twitter", 50);
  auto res = TwitterQ1(q.fx.dataset.get(), QueryOptions{}).ValueOrDie();
  EXPECT_EQ(res.summary, "count=50");
  EXPECT_EQ(res.stats.rows_scanned, 50u);
  EXPECT_GT(res.stats.bytes_scanned, 0u);
}

TEST(Operators, UnnestOperator) {
  QueryFixture q;
  q.Load(SchemaMode::kInferred, "sensors", 10, 1);
  // SensorsQ1 counts unnested readings: 117 per record.
  auto res = SensorsQ1(q.fx.dataset.get(), QueryOptions{}).ValueOrDie();
  EXPECT_EQ(res.summary, "readings=" + std::to_string(10 * 117));
}

TEST(Operators, GroupMapTopK) {
  GroupMap m;
  m.Cell("a").Add(1);
  m.Cell("a").Add(3);
  m.Cell("b").Add(10);
  m.Cell("c").AddCount();
  GroupMap other;
  other.Cell("b").Add(20);
  m.Merge(other);
  auto top = m.TopK(2, [](const AggCell& c) { return c.avg(); });
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "b");  // avg 15
  EXPECT_DOUBLE_EQ(top[0].second.avg(), 15.0);
  EXPECT_EQ(top[1].first, "a");  // avg 2
}

TEST(AggCell, MinMaxMerge) {
  AggCell a;
  a.Add(5);
  a.Add(-2);
  AggCell b;
  b.Add(100);
  a.Merge(b);
  EXPECT_EQ(a.count, 3);
  EXPECT_DOUBLE_EQ(a.min, -2);
  EXPECT_DOUBLE_EQ(a.max, 100);
  AggCell empty;
  a.Merge(empty);
  EXPECT_EQ(a.count, 3);
}

// Every paper query must return identical results across storage
// configurations: open, closed, inferred, SL-VB, with and without the
// field-access optimization, compressed and uncompressed.
class QueryEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(QueryEquivalence, AllConfigurationsAgree) {
  auto [workload, qnum] = GetParam();
  std::string reference;
  struct Config {
    SchemaMode mode;
    bool compression;
    bool consolidate;
    bool deep = true;  // §3.4.2-deep scan-predicate pushdown
  };
  std::vector<Config> configs = {
      {SchemaMode::kOpen, false, true},   {SchemaMode::kClosed, false, true},
      {SchemaMode::kInferred, false, true}, {SchemaMode::kInferred, false, false},
      {SchemaMode::kInferred, true, true},  {SchemaMode::kSchemalessVB, false, true},
      {SchemaMode::kInferred, false, true, /*deep=*/false},
      {SchemaMode::kInferred, false, false, /*deep=*/false},
  };
  for (const Config& cfg : configs) {
    DatasetFixture fx;
    DatasetOptions o = SmallOptions(cfg.mode, 128);
    o.compression = cfg.compression;
    auto gen = MakeGenerator(workload, 42);
    if (cfg.mode == SchemaMode::kClosed) o.type = gen->ClosedType();
    ASSERT_TRUE(fx.Open(std::move(o), 2).ok());
    int n = workload == "sensors" ? 40 : 80;
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(fx.dataset->Insert(gen->NextRecord()).ok());
    }
    ASSERT_TRUE(fx.dataset->FlushAll().ok());
    QueryOptions qo;
    qo.consolidate_field_access = cfg.consolidate;
    qo.pushdown_scan_predicates = cfg.deep;
    auto res = RunPaperQuery(workload, qnum, fx.dataset.get(), qo);
    ASSERT_TRUE(res.ok()) << res.status().ToString() << " mode "
                          << SchemaModeName(cfg.mode);
    std::string got = res.value().summary;
    if (reference.empty()) {
      reference = got;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(got, reference)
          << workload << " Q" << qnum << " mode=" << SchemaModeName(cfg.mode)
          << " comp=" << cfg.compression << " consolidate=" << cfg.consolidate
          << " deep=" << cfg.deep;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, QueryEquivalence,
    ::testing::Combine(::testing::Values("twitter", "wos", "sensors"),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_Q" + std::to_string(std::get<1>(info.param));
    });

TEST(SchemaBroadcast, CollectedOnlyForNonLocalExchange) {
  QueryFixture q;
  q.Load(SchemaMode::kInferred, "twitter", 30);
  SchemaRegistry none = SchemaRegistry::Collect(q.fx.dataset.get(), false);
  EXPECT_FALSE(none.collected());
  EXPECT_EQ(none.ForPartition(0), nullptr);
  SchemaRegistry reg = SchemaRegistry::Collect(q.fx.dataset.get(), true);
  EXPECT_TRUE(reg.collected());
  EXPECT_GT(reg.broadcast_bytes(), 0u);
  ASSERT_NE(reg.ForPartition(0), nullptr);
  ASSERT_NE(reg.ForPartition(1), nullptr);
  EXPECT_EQ(reg.ForPartition(5), nullptr);
  // Schemas are per-partition snapshots.
  EXPECT_EQ(reg.ForPartition(0)->ToString(),
            q.fx.dataset->partition(0)->SchemaSnapshot().ToString());
}

TEST(SchemaBroadcast, Q4DecodesForeignRecords) {
  // TwitterQ4 repartitions raw records and decodes them against the broadcast
  // schema of the source partition (§3.4.1).
  QueryFixture q;
  q.Load(SchemaMode::kInferred, "twitter", 60, 4);
  auto res = TwitterQ4(q.fx.dataset.get(), QueryOptions{}).ValueOrDie();
  EXPECT_EQ(res.summary, "ordered=60");
  EXPECT_GT(res.stats.schema_broadcast_bytes, 0u);
}

TEST(Queries, SelectiveWindowFiltersSensorsQ4) {
  QueryFixture q;
  q.Load(SchemaMode::kInferred, "sensors", 300, 1);
  auto q3 = SensorsQ3(q.fx.dataset.get(), QueryOptions{}).ValueOrDie();
  auto q4 = SensorsQ4(q.fx.dataset.get(), QueryOptions{}).ValueOrDie();
  // The window covers only the head of the generated time range.
  EXPECT_NE(q3.summary, q4.summary);
  EXPECT_FALSE(q4.summary.empty());
}

TEST(Queries, RunPaperQueryDispatch) {
  QueryFixture q;
  q.Load(SchemaMode::kInferred, "twitter", 10);
  EXPECT_TRUE(RunPaperQuery("twitter", 1, q.fx.dataset.get(), {}).ok());
  EXPECT_FALSE(RunPaperQuery("twitter", 5, q.fx.dataset.get(), {}).ok());
  EXPECT_FALSE(RunPaperQuery("nope", 1, q.fx.dataset.get(), {}).ok());
}

}  // namespace
}  // namespace tc
