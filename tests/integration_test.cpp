// End-to-end flows combining ingestion (feeds + updates), flush/merge,
// compression, schema evolution, recovery, queries, and the cluster harness.
#include <gtest/gtest.h>

#include "adm/parser.h"
#include "adm/printer.h"
#include "cluster/cluster.h"
#include "schema/inference.h"
#include "query/paper_queries.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace tc {
namespace {

using testutil::DatasetFixture;
using testutil::SmallOptions;

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }

TEST(Integration, UpdateHeavyFeedKeepsSchemaExact) {
  // 50% updates that add/remove fields and change types (the Figure 17b
  // workload); the inferred schema must stay exactly consistent with the
  // live data (anti-schema processing at every flush).
  DatasetFixture fx;
  DatasetOptions o = SmallOptions(SchemaMode::kInferred, 32);
  o.primary_key_index = true;
  ASSERT_TRUE(fx.Open(std::move(o), 1).ok());
  Rng rng(2718);
  std::map<int64_t, AdmValue> model;
  for (int i = 0; i < 600; ++i) {
    int64_t pk = static_cast<int64_t>(rng.Uniform(150));
    AdmValue rec = AdmValue::Object();
    rec.AddField("id", AdmValue::BigInt(pk));
    // Rotating shapes: sometimes int, sometimes string, sometimes extra field.
    switch (rng.Uniform(3)) {
      case 0:
        rec.AddField("v", AdmValue::BigInt(static_cast<int64_t>(rng.Next() % 100)));
        break;
      case 1:
        rec.AddField("v", AdmValue::String(rng.AlphaString(6)));
        break;
      default:
        rec.AddField("v", AdmValue::BigInt(1));
        rec.AddField("extra", AdmValue::Double(0.5));
        break;
    }
    ASSERT_TRUE(fx.dataset->Upsert(rec).ok());
    model[pk] = std::move(rec);
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  // Data correct.
  for (const auto& [pk, rec] : model) {
    auto got = fx.dataset->Get(pk).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << pk;
    EXPECT_EQ(PrintAdm(*got), PrintAdm(rec)) << pk;
  }
  // Schema counters exactly match the live records: re-infer from scratch.
  DatasetType type = DatasetType::OpenWithPk("id");
  Schema expected;
  for (const auto& [pk, rec] : model) {
    ASSERT_TRUE(InferRecord(&expected, rec, type.root.get()).ok());
  }
  Schema actual = fx.dataset->partition(0)->SchemaSnapshot();
  EXPECT_EQ(actual.ToString(), expected.ToString());
}

TEST(Integration, DeleteEverythingEmptiesSchema) {
  DatasetFixture fx;
  ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred, 16), 1).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fx.dataset
                    ->Insert(R(R"({"id": )" + std::to_string(i) +
                               R"(, "payload": "x"})"))
                    .ok());
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(fx.dataset->Delete(i).ok());
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  EXPECT_EQ(fx.dataset->partition(0)->SchemaSnapshot().ToString(), "{}(0)");
  for (int i = 0; i < 100; i += 13) {
    EXPECT_FALSE(fx.dataset->Get(i).ValueOrDie().has_value());
  }
}

TEST(Integration, MergeKeepsNewestSchemaAndData) {
  DatasetFixture fx;
  DatasetOptions o = SmallOptions(SchemaMode::kInferred, 16);
  o.merge.max_tolerance_count = 2;  // merge aggressively
  ASSERT_TRUE(fx.Open(std::move(o), 1).ok());
  auto gen = MakeWosGenerator(55);
  std::vector<AdmValue> records;
  for (int i = 0; i < 60; ++i) {
    records.push_back(gen->NextRecord());
    ASSERT_TRUE(fx.dataset->Insert(records.back()).ok());
  }
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  LsmStats stats = fx.dataset->AggregateStats();
  EXPECT_GT(stats.merge_count, 0u);
  // All records decodable after merges (merged component carries the newest
  // schema, §3.1.1).
  for (const auto& rec : records) {
    int64_t pk = rec.FindField("id")->int_value();
    auto got = fx.dataset->Get(pk).ValueOrDie();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(PrintAdm(*got), PrintAdm(rec));
  }
}

TEST(Integration, CompressedInferredSurvivesRestart) {
  DatasetFixture fx;
  DatasetOptions o = SmallOptions(SchemaMode::kInferred, 64);
  o.compression = true;
  o.wal_sync_every = 1;
  ASSERT_TRUE(fx.Open(o, 2).ok());
  auto gen = MakeSensorsGenerator(66);
  std::vector<AdmValue> records;
  for (int i = 0; i < 30; ++i) {
    records.push_back(gen->NextRecord());
    ASSERT_TRUE(fx.dataset->Insert(records.back()).ok());
  }
  // Restart without explicit flush: WAL replay + recovery flush.
  ASSERT_TRUE(fx.Reopen(o, 2).ok());
  for (const auto& rec : records) {
    int64_t pk = rec.FindField("id")->int_value();
    auto got = fx.dataset->Get(pk).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << pk;
    EXPECT_EQ(PrintAdm(*got), PrintAdm(rec));
  }
  // Queries still work after recovery.
  auto res = SensorsQ2(fx.dataset.get(), QueryOptions{}).ValueOrDie();
  EXPECT_FALSE(res.summary.empty());
}

TEST(Integration, ClusterHarnessIngestsAndQueries) {
  auto fs = MakeMemFileSystem();
  DatasetOptions o = SmallOptions(SchemaMode::kInferred, 128);
  BufferCache cache(o.page_size, 4096);
  o.fs = fs;
  o.cache = &cache;
  o.dir = "cluster";
  auto harness =
      ClusterHarness::Create(ClusterTopology{2, 2}, std::move(o)).ValueOrDie();
  ASSERT_TRUE(harness->IngestParallel("twitter", 40, 7).ok());
  auto res = TwitterQ1(harness->dataset(), QueryOptions{}).ValueOrDie();
  EXPECT_EQ(res.summary, "count=80");  // 2 nodes x 40 records
  auto q2 = TwitterQ2(harness->dataset(), QueryOptions{}).ValueOrDie();
  EXPECT_FALSE(q2.summary.empty());
}

TEST(Integration, SlVbMatchesInferredResultsButLargerStorage) {
  // SL-VB (vector format without compaction) must produce identical query
  // results with a larger footprint (Figure 21).
  uint64_t inferred_bytes = 0, slvb_bytes = 0;
  std::string inferred_q2, slvb_q2;
  for (SchemaMode mode : {SchemaMode::kInferred, SchemaMode::kSchemalessVB}) {
    DatasetFixture fx;
    ASSERT_TRUE(fx.Open(SmallOptions(mode, 256), 1).ok());
    auto gen = MakeSensorsGenerator(88);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(fx.dataset->Insert(gen->NextRecord()).ok());
    }
    ASSERT_TRUE(fx.dataset->FlushAll().ok());
    auto res = SensorsQ3(fx.dataset.get(), QueryOptions{}).ValueOrDie();
    if (mode == SchemaMode::kInferred) {
      inferred_bytes = fx.dataset->TotalPhysicalBytes();
      inferred_q2 = res.summary;
    } else {
      slvb_bytes = fx.dataset->TotalPhysicalBytes();
      slvb_q2 = res.summary;
    }
  }
  EXPECT_EQ(inferred_q2, slvb_q2);
  EXPECT_LT(inferred_bytes, slvb_bytes);
}

TEST(Integration, BulkLoadThenQueriesMatchFeedIngestion) {
  std::string fed, loaded;
  for (bool bulk : {false, true}) {
    DatasetFixture fx;
    ASSERT_TRUE(fx.Open(SmallOptions(SchemaMode::kInferred, 128), 2).ok());
    auto gen = MakeWosGenerator(31);
    std::vector<AdmValue> records;
    for (int i = 0; i < 50; ++i) records.push_back(gen->NextRecord());
    if (bulk) {
      ASSERT_TRUE(fx.dataset->BulkLoad(std::move(records)).ok());
    } else {
      for (const auto& r : records) ASSERT_TRUE(fx.dataset->Insert(r).ok());
      ASSERT_TRUE(fx.dataset->FlushAll().ok());
    }
    auto res = WosQ3(fx.dataset.get(), QueryOptions{}).ValueOrDie();
    (bulk ? loaded : fed) = res.summary;
  }
  EXPECT_EQ(fed, loaded);
}

}  // namespace
}  // namespace tc
