#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/rng.h"
#include "lsm/lsm_tree.h"

namespace tc {
namespace {

struct LsmFixture {
  std::shared_ptr<FileSystem> fs = MakeMemFileSystem();
  BufferCache cache{4096, 2048};

  std::unique_ptr<LsmTree> Open(size_t memtable_bytes = 8 * 1024,
                                CompressionKind codec = CompressionKind::kNone,
                                std::shared_ptr<MergePolicy> policy = nullptr) {
    LsmTreeOptions o;
    o.fs = fs;
    o.cache = &cache;
    o.dir = "lsm";
    o.name = "t";
    o.page_size = 4096;
    o.memtable_budget_bytes = memtable_bytes;
    o.compression = codec;
    o.merge_policy = policy ? std::move(policy)
                            : MakePrefixMergePolicy(1 << 20, 4);
    o.wal_sync_every = 0;
    return LsmTree::Open(std::move(o)).ValueOrDie();
  }
};

std::string S(const Buffer& b) { return std::string(b.begin(), b.end()); }

TEST(LsmTree, InsertGetAcrossFlush) {
  LsmFixture fx;
  auto t = fx.Open();
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "one").ok());
  ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "two").ok());
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "one");
  ASSERT_TRUE(t->Flush().ok());
  EXPECT_EQ(t->component_count(), 1u);
  EXPECT_TRUE(t->View().memtable().empty());
  EXPECT_EQ(S(*t->Get(BtreeKey{1, 0}).ValueOrDie()), "one");
  EXPECT_FALSE(t->Get(BtreeKey{3, 0}).ValueOrDie().has_value());
}

TEST(LsmTree, DeleteAddsAntiMatterThatShadowsDiskVersion) {
  LsmFixture fx;
  auto t = fx.Open();
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "v").ok());
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->Delete(BtreeKey{1, 0}, nullptr).ok());
  EXPECT_FALSE(t->Get(BtreeKey{1, 0}).ValueOrDie().has_value());
  ASSERT_TRUE(t->Flush().ok());
  // Two components: the newer one carries the anti-matter entry (§2.2).
  EXPECT_EQ(t->component_count(), 2u);
  EXPECT_EQ(t->View().components()[0]->meta().n_anti, 1u);
  EXPECT_FALSE(t->Get(BtreeKey{1, 0}).ValueOrDie().has_value());
}

TEST(LsmTree, MergeAnnihilatesAntiMatter) {
  LsmFixture fx;
  auto t = fx.Open(8 * 1024, CompressionKind::kNone, MakeNoMergePolicy());
  ASSERT_TRUE(t->Insert(BtreeKey{0, 0}, "kim").ok());
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "john").ok());
  ASSERT_TRUE(t->Flush().ok());  // C0
  ASSERT_TRUE(t->Delete(BtreeKey{0, 0}, nullptr).ok());
  ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "bob").ok());
  ASSERT_TRUE(t->Flush().ok());  // C1 with anti-matter for key 0 (Figure 4a)
  ASSERT_EQ(t->component_count(), 2u);

  // The merged view annihilates key 0 (Figure 4b): the anti-matter entry and
  // the shadowed record cancel out.
  LsmTree::Iterator it(t.get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  std::vector<int64_t> keys;
  while (it.Valid()) {
    keys.push_back(it.key().a);
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2}));

  // Component IDs are monotonically increasing, newest first (§2.2).
  auto view = t->View();
  EXPECT_GT(view.components()[0]->meta().cid_min,
            view.components()[1]->meta().cid_max);
}

TEST(LsmTree, MergedComponentIdSpansRange) {
  LsmFixture fx;
  auto t = fx.Open(8 * 1024, CompressionKind::kNone, MakeConstantMergePolicy(2));
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          t->Upsert(BtreeKey{round * 3 + i, 0}, "v" + std::to_string(round), nullptr)
              .ok());
    }
    ASSERT_TRUE(t->Flush().ok());
  }
  // Constant policy (k=2) merged everything into one [C1..C3] component.
  auto view = t->View();
  ASSERT_EQ(view.component_count(), 1u);
  EXPECT_EQ(view.components()[0]->meta().cid_min, 1u);
  EXPECT_EQ(view.components()[0]->meta().cid_max, 3u);
  EXPECT_EQ(view.components()[0]->meta().n_entries, 9u);
  EXPECT_GE(t->stats().merge_count, 1u);
}

TEST(LsmTree, UpsertCapturesOldDiskVersionOnce) {
  LsmFixture fx;
  LsmTreeOptions o;
  o.fs = fx.fs;
  o.cache = &fx.cache;
  o.dir = "lsm";
  o.name = "cap";
  o.page_size = 4096;
  o.memtable_budget_bytes = 1 << 20;
  o.capture_old_versions = true;
  o.wal_sync_every = 0;
  auto t = LsmTree::Open(std::move(o)).ValueOrDie();

  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "disk_v1").ok());
  ASSERT_TRUE(t->Flush().ok());
  std::optional<Buffer> old;
  ASSERT_TRUE(t->Upsert(BtreeKey{1, 0}, "v2", &old).ok());
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(S(*old), "disk_v1");
  EXPECT_EQ(t->stats().old_version_lookups, 1u);
  // Second upsert: the memtable already owns the key; no disk lookup.
  old.reset();
  ASSERT_TRUE(t->Upsert(BtreeKey{1, 0}, "v3", &old).ok());
  EXPECT_EQ(t->stats().old_version_lookups, 1u);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(S(*old), "v2");  // previous visible (in-memory) version
}

TEST(LsmTree, KeyMayExistFilterSkipsLookups) {
  LsmFixture fx;
  LsmTreeOptions o;
  o.fs = fx.fs;
  o.cache = &fx.cache;
  o.dir = "lsm";
  o.name = "pkf";
  o.page_size = 4096;
  o.memtable_budget_bytes = 1 << 20;
  o.capture_old_versions = true;
  o.wal_sync_every = 0;
  o.key_may_exist = [](const BtreeKey&) { return false; };  // "all keys new"
  auto t = LsmTree::Open(std::move(o)).ValueOrDie();
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "a").ok());
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->Upsert(BtreeKey{2, 0}, "b", nullptr).ok());
  EXPECT_EQ(t->stats().old_version_lookups, 0u);  // filter said no
}

TEST(LsmTree, AutoFlushOnBudgetAndPrefixMergeBound) {
  LsmFixture fx;
  auto t = fx.Open(/*memtable=*/4 * 1024, CompressionKind::kNone,
                   MakePrefixMergePolicy(64 * 1024, 3));
  std::string payload(128, 'p');
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(t->Insert(BtreeKey{i, 0}, payload).ok());
  }
  EXPECT_GT(t->stats().flush_count, 1u);
  EXPECT_GT(t->stats().merge_count, 0u);
  // The prefix policy keeps the small-component count bounded.
  size_t small = 0;
  auto view = t->View();  // C++17 range-for would drop an inline temporary
  for (const auto& c : view.components()) {
    if (c->physical_bytes() < 64 * 1024) ++small;
  }
  EXPECT_LE(small, 4u);
  // Everything is still readable.
  for (int i = 0; i < 400; i += 37) {
    EXPECT_TRUE(t->Get(BtreeKey{i, 0}).ValueOrDie().has_value()) << i;
  }
}

TEST(LsmTree, ScanMergesNewestWins) {
  LsmFixture fx;
  auto t = fx.Open(1 << 20, CompressionKind::kNone, MakeNoMergePolicy());
  ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "old1").ok());
  ASSERT_TRUE(t->Insert(BtreeKey{2, 0}, "old2").ok());
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->Upsert(BtreeKey{1, 0}, "new1", nullptr).ok());
  ASSERT_TRUE(t->Insert(BtreeKey{3, 0}, "mem3").ok());  // stays in memtable

  LsmTree::Iterator it(t.get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  std::map<int64_t, std::string> seen;
  while (it.Valid()) {
    seen[it.key().a] = std::string(it.payload());
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[1], "new1");
  EXPECT_EQ(seen[2], "old2");
  EXPECT_EQ(seen[3], "mem3");
}

TEST(LsmTree, PropertyMatchesModelUnderRandomOps) {
  LsmFixture fx;
  auto t = fx.Open(/*memtable=*/2 * 1024, CompressionKind::kSnappy,
                   MakePrefixMergePolicy(32 * 1024, 3));
  std::map<int64_t, std::string> model;
  Rng rng(5150);
  for (int op = 0; op < 3000; ++op) {
    int64_t key = static_cast<int64_t>(rng.Uniform(200));
    if (rng.Bernoulli(0.7)) {
      std::string v = "v" + std::to_string(op) + "_" + rng.AlphaString(rng.Uniform(40));
      ASSERT_TRUE(t->Upsert(BtreeKey{key, 0}, v, nullptr).ok());
      model[key] = v;
    } else {
      ASSERT_TRUE(t->Delete(BtreeKey{key, 0}, nullptr).ok());
      model.erase(key);
    }
  }
  // Point lookups agree with the model.
  for (int64_t k = 0; k < 200; ++k) {
    auto got = t->Get(BtreeKey{k, 0}).ValueOrDie();
    auto it = model.find(k);
    if (it == model.end()) {
      EXPECT_FALSE(got.has_value()) << k;
    } else {
      ASSERT_TRUE(got.has_value()) << k;
      EXPECT_EQ(S(*got), it->second) << k;
    }
  }
  // Scan agrees with the model.
  LsmTree::Iterator it(t.get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  auto mit = model.begin();
  while (it.Valid() && mit != model.end()) {
    EXPECT_EQ(it.key().a, mit->first);
    EXPECT_EQ(std::string(it.payload()), mit->second);
    ASSERT_TRUE(it.Next().ok());
    ++mit;
  }
  EXPECT_FALSE(it.Valid());
  EXPECT_EQ(mit, model.end());
}

// A policy that returns whatever range it is told to — the malformed-decision
// hardening must reject these with a Status instead of crashing.
class RiggedPolicy final : public MergePolicy {
 public:
  RiggedPolicy(size_t begin, size_t end) : begin_(begin), end_(end) {}
  const char* name() const override { return "rigged"; }
  MergeDecision Decide(const std::vector<uint64_t>&,
                       const std::vector<bool>&) const override {
    return {true, begin_, end_};
  }

 private:
  size_t begin_, end_;
};

TEST(LsmTree, MalformedMergeDecisionRejectedNotCrashed) {
  {
    // end < begin would underflow the width check.
    LsmFixture fx;
    auto t = fx.Open(8 * 1024, CompressionKind::kNone,
                     std::make_shared<RiggedPolicy>(3, 1));
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "v").ok());
    Status st = t->Flush();
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("invalid range"), std::string::npos);
  }
  {
    // end past the component vector would only trip TC_CHECK deeper down.
    LsmFixture fx;
    auto t = fx.Open(8 * 1024, CompressionKind::kNone,
                     std::make_shared<RiggedPolicy>(0, 99));
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "v").ok());
    EXPECT_FALSE(t->Flush().ok());
  }
  {
    // Degenerate-but-well-formed ranges are a quiet no-merge, not an error.
    LsmFixture fx;
    auto t = fx.Open(8 * 1024, CompressionKind::kNone,
                     std::make_shared<RiggedPolicy>(0, 0));
    ASSERT_TRUE(t->Insert(BtreeKey{1, 0}, "v").ok());
    EXPECT_TRUE(t->Flush().ok());
    EXPECT_EQ(t->component_count(), 1u);
  }
}

TEST(LsmTree, StatsTrackWriteAmpAndComponentHighWater) {
  LsmFixture fx;
  auto t = fx.Open(8 * 1024, CompressionKind::kNone, MakeConstantMergePolicy(2));
  std::string payload(128, 'p');
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(t->Insert(BtreeKey{round * 8 + i, 0}, payload).ok());
    }
    ASSERT_TRUE(t->Flush().ok());
  }
  // constant(2) merges everything whenever a flush pushes the count to 3, so
  // the high-water mark is exactly 3 (flushes 1-4 leave 1, 2, 3→1, 2 live).
  EXPECT_EQ(t->stats().component_count_high_water, 3u);
  EXPECT_EQ(t->component_count(), 2u);
  EXPECT_GT(t->stats().merge_count, 0u);
  EXPECT_GT(t->stats().WriteAmplification(), 1.0);
  // A tree that never flushed reports the 1.0 floor, not a division by zero.
  EXPECT_EQ(LsmStats().WriteAmplification(), 1.0);
}

// Readers racing a flushing/merging writer: Get pins a ReadView and searches
// it outside the tree locks, so a concurrent component swap can neither tear
// the walk nor make a committed key transiently disappear. The writer uses a
// tiny memtable so the component vector churns constantly under the readers.
// (concurrency_test.cpp carries the heavier snapshot/reclamation stress.)
TEST(LsmTree, ConcurrentReadersDuringFlushAndMerge) {
  LsmFixture fx;
  auto t = fx.Open(/*memtable=*/2 * 1024, CompressionKind::kNone,
                   MakeTieredMergePolicy(3, 3));
  constexpr int kKeys = 400;
  std::string payload(96, 'x');
  ASSERT_TRUE(t->Insert(BtreeKey{0, 0}, payload).ok());
  std::atomic<bool> done{false};
  std::atomic<int> written{1};
  std::atomic<bool> reader_failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(777 + r);
      while (!done.load(std::memory_order_acquire)) {
        int64_t k = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>(written.load())));
        auto got = t->Get(BtreeKey{k, 0});
        if (!got.ok() || !got.value().has_value()) {
          reader_failed.store(true);
          return;
        }
      }
    });
  }
  for (int i = 1; i < kKeys; ++i) {
    ASSERT_TRUE(t->Insert(BtreeKey{i, 0}, payload).ok());
    written.store(i + 1, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(reader_failed.load());
  EXPECT_GT(t->stats().merge_count, 0u);
}

TEST(LsmTree, BulkLoadBuildsSingleComponent) {
  LsmFixture fx;
  auto t = fx.Open();
  ASSERT_TRUE(t->BulkLoad([](std::function<Status(const BtreeKey&, std::string_view)>
                                 add) -> Status {
                 for (int i = 0; i < 100; ++i) {
                   TC_RETURN_IF_ERROR(add(BtreeKey{i, 0}, "blk" + std::to_string(i)));
                 }
                 return Status::OK();
               })
                  .ok());
  auto view = t->View();
  EXPECT_EQ(view.component_count(), 1u);
  EXPECT_EQ(view.components()[0]->meta().n_entries, 100u);
  EXPECT_EQ(S(*t->Get(BtreeKey{42, 0}).ValueOrDie()), "blk42");
  // Bulk load requires an empty tree.
  EXPECT_FALSE(t->BulkLoad([](auto) { return Status::OK(); }).ok());
}

}  // namespace
}  // namespace tc
