// Fuzz entry points shared by the libFuzzer binaries (TC_FUZZERS=ON, Clang),
// the standalone driver (any compiler), and the always-on corpus-replay gtest.
// Each target returns 0 and aborts (TC_CHECK) on an invariant violation, so
// the same body serves every harness.
#ifndef TC_TESTS_FUZZ_FUZZ_TARGETS_H_
#define TC_TESTS_FUZZ_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>

namespace tc {

/// ParseAdm over arbitrary bytes. Invariants: never crashes, and any value it
/// accepts survives a print -> reparse round trip.
int FuzzParseAdm(const uint8_t* data, size_t size);

/// DeserializeSchema over arbitrary bytes. Invariants: never crashes, never
/// reads past `size`, and any schema it accepts re-serializes to a canonical
/// form that deserializes to the same bytes again.
int FuzzDeserializeSchema(const uint8_t* data, size_t size);

}  // namespace tc

#endif  // TC_TESTS_FUZZ_FUZZ_TARGETS_H_
