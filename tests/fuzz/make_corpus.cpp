// Regenerates the checked-in fuzz corpus under tests/fuzz/corpus/. Seeds come
// from the workload generators (real record shapes for ParseAdm; their
// inferred schemas, serialized, for DeserializeSchema) plus handwritten edge
// cases. Deterministic — rerunning produces identical files.
//
//   ./make_corpus <corpus_dir>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "adm/printer.h"
#include "schema/inference.h"
#include "schema/schema_io.h"
#include "schema/schema_tree.h"
#include "workload/workload.h"

namespace {

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus_dir>\n", argv[0]);
    return 1;
  }
  std::string dir = argv[1];
  std::filesystem::create_directories(dir);

  // ParseAdm seeds: generator records across all three datasets...
  int n = 0;
  for (const char* dataset : {"twitter", "wos", "sensors"}) {
    auto gen = tc::MakeGenerator(dataset, /*seed=*/7);
    for (int i = 0; i < 4; ++i) {
      std::string text = tc::PrintAdm(gen->NextRecord());
      char name[64];
      std::snprintf(name, sizeof(name), "/adm_%s_%d", dataset, i);
      WriteFile(dir + name, text);
      ++n;
    }
  }
  // ...plus handwritten edge cases the generators never emit.
  const char* handwritten[] = {
      "{}",
      "[]",
      "{{1, 2, 3}}",
      "null",
      "missing",
      "-9223372036854775808",
      "1.7976931348623157e308",
      "{\"a\": [{\"b\": {{\"c\"}}}], \"d\": point(\"1.5,-2.5\")}",
      "{\"t\": datetime(\"2014-01-01T00:00:00\"), \"u\": "
      "uuid(\"5c848e5c-6b6a-498f-8452-8847a2957a48\")}",
      "{\"s\": \"\\\"\\\\\\u00e9\\n\", \"d\": duration(\"P3DT1H\"), "
      "\"w\": date(\"2020-02-29\"), \"x\": time(\"23:59:59\")}",
      "[[[[[[[[1]]]]]]]]",
      "{\"a\": true, \"b\": false, \"deep\": [1, [2, [3, [4.25]]]]}",
  };
  int h = 0;
  for (const char* text : handwritten) {
    WriteFile(dir + "/adm_edge_" + std::to_string(h++), text);
    ++n;
  }

  // DeserializeSchema seeds: schemas inferred from generator records.
  for (const char* dataset : {"twitter", "wos", "sensors"}) {
    auto gen = tc::MakeGenerator(dataset, /*seed=*/11);
    tc::DatasetType declared = gen->OpenType();
    tc::Schema schema;
    for (int i = 0; i < 16; ++i) {
      auto st = tc::InferRecord(&schema, gen->NextRecord(), declared.root.get());
      if (!st.ok()) {
        std::fprintf(stderr, "infer failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    tc::Buffer blob;
    tc::SerializeSchema(schema, &blob);
    WriteFile(dir + "/schema_" + dataset,
              std::string(blob.begin(), blob.end()));
    ++n;
  }
  // An empty schema and a truncated blob round out the schema seeds.
  {
    tc::Schema schema;
    tc::Buffer blob;
    tc::SerializeSchema(schema, &blob);
    WriteFile(dir + "/schema_empty", std::string(blob.begin(), blob.end()));
    if (blob.size() > 2) {
      WriteFile(dir + "/schema_truncated",
                std::string(blob.begin(), blob.begin() + blob.size() / 2));
    }
    n += 2;
  }

  std::printf("wrote %d corpus files to %s\n", n, dir.c_str());
  return 0;
}
