#include "fuzz_targets.h"

#include <string>
#include <string_view>

#include "adm/parser.h"
#include "adm/printer.h"
#include "common/status.h"
#include "schema/schema_io.h"

namespace tc {

int FuzzParseAdm(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = ParseAdm(text);
  if (!parsed.ok()) return 0;  // rejecting is fine; crashing is not
  // Anything the parser accepts must survive print -> reparse: the printer is
  // the flush path's inverse, so a value that prints unparsably would corrupt
  // a dataset round trip.
  std::string printed = PrintAdm(parsed.value());
  auto reparsed = ParseAdm(printed);
  TC_CHECK(reparsed.ok());
  // And printing must have reached a fixed point (canonical text).
  TC_CHECK(PrintAdm(reparsed.value()) == printed);
  return 0;
}

int FuzzDeserializeSchema(const uint8_t* data, size_t size) {
  size_t consumed = 0;
  auto parsed = DeserializeSchema(data, size, &consumed);
  if (!parsed.ok()) return 0;
  TC_CHECK(consumed <= size);
  // Accepted schemas re-serialize canonically: serialize -> deserialize ->
  // serialize must be a fixed point, or persisted component metadata would
  // drift across rewrites.
  Buffer first;
  SerializeSchema(parsed.value(), &first);
  size_t consumed2 = 0;
  auto again = DeserializeSchema(first.data(), first.size(), &consumed2);
  TC_CHECK(again.ok());
  TC_CHECK(consumed2 == first.size());
  Buffer second;
  SerializeSchema(again.value(), &second);
  TC_CHECK(first == second);
  return 0;
}

}  // namespace tc
