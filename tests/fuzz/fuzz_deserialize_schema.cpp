// libFuzzer binary for DeserializeSchema (built only with -DTC_FUZZERS=ON
// under Clang).
#include "fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return tc::FuzzDeserializeSchema(data, size);
}
