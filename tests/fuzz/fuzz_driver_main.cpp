// Standalone driver used when the toolchain has no libFuzzer (GCC builds of
// TC_FUZZERS=ON): replays every corpus file passed on the command line, then
// optionally runs a timed random-mutation loop over the corpus
// (--seconds=N). Links against the same LLVMFuzzerTestOneInput as the
// libFuzzer build, so invariant violations abort identically.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long seconds = 0;
  std::vector<std::vector<uint8_t>> corpus;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::strtol(argv[i] + 10, nullptr, 10);
      continue;
    }
    // Like libFuzzer, accept corpus directories as well as single files.
    std::vector<std::string> paths;
    if (std::filesystem::is_directory(argv[i])) {
      for (const auto& entry : std::filesystem::directory_iterator(argv[i])) {
        if (entry.is_regular_file()) paths.push_back(entry.path().string());
      }
    } else {
      paths.emplace_back(argv[i]);
    }
    for (const auto& path : paths) {
      std::vector<uint8_t> bytes;
      if (!ReadFile(path, &bytes)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
      }
      LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      corpus.push_back(std::move(bytes));
    }
  }
  std::printf("replayed %zu corpus inputs\n", corpus.size());
  if (seconds > 0 && !corpus.empty()) {
    tc::Rng rng(42);
    uint64_t iters = 0;
    const auto deadline = std::time(nullptr) + seconds;
    while (std::time(nullptr) < deadline) {
      std::vector<uint8_t> input = corpus[rng.Uniform(corpus.size())];
      // Cheap mutations: byte flips, truncation, splice of another input.
      size_t n_mut = 1 + rng.Uniform(8);
      for (size_t m = 0; m < n_mut && !input.empty(); ++m) {
        switch (rng.Uniform(3)) {
          case 0:
            input[rng.Uniform(input.size())] =
                static_cast<uint8_t>(rng.Uniform(256));
            break;
          case 1:
            input.resize(rng.Uniform(input.size()) + 1);
            break;
          default: {
            const auto& other = corpus[rng.Uniform(corpus.size())];
            if (!other.empty()) {
              input.insert(input.begin() + rng.Uniform(input.size() + 1),
                           other.begin(),
                           other.begin() + rng.Uniform(other.size()) + 1);
            }
            break;
          }
        }
      }
      LLVMFuzzerTestOneInput(input.data(), input.size());
      ++iters;
    }
    std::printf("mutated for %lds: %llu iterations\n", seconds,
                static_cast<unsigned long long>(iters));
  }
  return 0;
}
