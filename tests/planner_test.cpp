// Tests for the cost-based plan picker: ChooseAccessPath decisions on rigged
// PlannerInputs (pure cost-model unit tests), and end-to-end plan switching
// on a live secondary-indexed dataset where the chosen access path must be
// visible in QueryStats and invariant in its results.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "query/paper_queries.h"
#include "query/planner.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace tc {
namespace {

using testutil::DatasetFixture;
using testutil::SmallOptions;

PlannerInputs Rigged() {
  PlannerInputs in;
  in.rows = 100000;
  in.physical_bytes = 1u << 26;
  in.primary_components = 4;
  in.secondary_components = 3;
  in.has_secondary = true;
  in.sk_min = 0;
  in.sk_max = 999999;
  in.sk_bounds_valid = true;
  in.partitions = 2;
  in.can_lower_predicate = true;
  return in;
}

std::shared_ptr<const ScanPredicate> Window(int64_t lo, int64_t hi) {
  return ScanPredicate::And(
      {ScanPredicate::Term("ts", CompareOp::kGe, AdmValue::BigInt(lo)),
       ScanPredicate::Term("ts", CompareOp::kLe, AdmValue::BigInt(hi))});
}

TEST(ChooseAccessPath, NoPredicateIsFullScan) {
  PlanDecision d = ChooseAccessPath(Rigged(), nullptr, "ts");
  EXPECT_EQ(d.path, AccessPath::kFullScan);
  EXPECT_DOUBLE_EQ(d.selectivity, 1.0);
  EXPECT_TRUE(d.ranges.empty());
}

TEST(ChooseAccessPath, NarrowWindowProbesIndex) {
  auto pred = Window(0, 999);  // 0.1% of the fence-key domain
  PlanDecision d = ChooseAccessPath(Rigged(), pred.get(), "ts");
  EXPECT_EQ(d.path, AccessPath::kIndexProbe);
  ASSERT_EQ(d.ranges.size(), 1u);
  EXPECT_EQ(d.ranges[0].first, 0);
  EXPECT_EQ(d.ranges[0].second, 999);
  EXPECT_LT(d.probe_cost, d.scan_cost);
  EXPECT_LT(d.selectivity, 0.01);
}

TEST(ChooseAccessPath, WideWindowScansFiltered) {
  auto pred = Window(0, 899999);  // 90% of the domain
  PlanDecision d = ChooseAccessPath(Rigged(), pred.get(), "ts");
  EXPECT_EQ(d.path, AccessPath::kFilteredScan);
  EXPECT_GT(d.probe_cost, d.scan_cost);
}

TEST(ChooseAccessPath, LoweringDisabledFallsBackToFullScan) {
  PlannerInputs in = Rigged();
  in.can_lower_predicate = false;
  auto pred = Window(0, 899999);
  PlanDecision d = ChooseAccessPath(in, pred.get(), "ts");
  EXPECT_EQ(d.path, AccessPath::kFullScan);
  // ...but a narrow window still probes: lowering is irrelevant to the index.
  auto narrow = Window(0, 999);
  EXPECT_EQ(ChooseAccessPath(in, narrow.get(), "ts").path,
            AccessPath::kIndexProbe);
}

TEST(ChooseAccessPath, NoSecondaryIndexNeverProbes) {
  PlannerInputs in = Rigged();
  in.has_secondary = false;
  auto pred = Window(0, 9);
  PlanDecision d = ChooseAccessPath(in, pred.get(), "");
  EXPECT_EQ(d.path, AccessPath::kFilteredScan);
  EXPECT_TRUE(d.ranges.empty());
}

TEST(ChooseAccessPath, InListBecomesPointRanges) {
  auto pred = ScanPredicate::And({ScanPredicate::In(
      "ts", {AdmValue::BigInt(5), AdmValue::BigInt(1), AdmValue::BigInt(5),
             AdmValue::BigInt(9)})});
  PlanDecision d = ChooseAccessPath(Rigged(), pred.get(), "ts");
  EXPECT_EQ(d.path, AccessPath::kIndexProbe);
  ASSERT_EQ(d.ranges.size(), 3u);  // sorted, deduplicated points
  EXPECT_EQ(d.ranges[0], (std::pair<int64_t, int64_t>{1, 1}));
  EXPECT_EQ(d.ranges[1], (std::pair<int64_t, int64_t>{5, 5}));
  EXPECT_EQ(d.ranges[2], (std::pair<int64_t, int64_t>{9, 9}));
}

TEST(ChooseAccessPath, InListPointsClippedByConjunctRange) {
  auto pred = ScanPredicate::And(
      {ScanPredicate::In("ts", {AdmValue::BigInt(5), AdmValue::BigInt(500)}),
       ScanPredicate::Term("ts", CompareOp::kLt, AdmValue::BigInt(100))});
  PlanDecision d = ChooseAccessPath(Rigged(), pred.get(), "ts");
  ASSERT_EQ(d.ranges.size(), 1u);
  EXPECT_EQ(d.ranges[0], (std::pair<int64_t, int64_t>{5, 5}));
}

TEST(ChooseAccessPath, ProvablyEmptyRangeProbesNothing) {
  auto pred = ScanPredicate::And(
      {ScanPredicate::Term("ts", CompareOp::kGt, AdmValue::BigInt(100)),
       ScanPredicate::Term("ts", CompareOp::kLt, AdmValue::BigInt(50))});
  PlanDecision d = ChooseAccessPath(Rigged(), pred.get(), "ts");
  EXPECT_EQ(d.path, AccessPath::kIndexProbe);
  EXPECT_TRUE(d.ranges.empty());
  EXPECT_DOUBLE_EQ(d.probe_cost, 0.0);
}

TEST(ChooseAccessPath, NonSargablePredicateScans) {
  auto pred = ScanPredicate::And({ScanPredicate::Term(
      "other_field", CompareOp::kEq, AdmValue::BigInt(3))});
  PlanDecision d = ChooseAccessPath(Rigged(), pred.get(), "ts");
  EXPECT_EQ(d.path, AccessPath::kFilteredScan);
  EXPECT_TRUE(d.ranges.empty());
}

// Widening the window must flip the decision probe -> scan exactly once.
TEST(ChooseAccessPath, CrossoverIsMonotone) {
  PlannerInputs in = Rigged();
  bool seen_scan = false;
  int flips = 0;
  AccessPath prev = AccessPath::kIndexProbe;
  for (int64_t width : {100ll, 1000ll, 10000ll, 50000ll, 100000ll, 300000ll,
                        600000ll, 1000000ll}) {
    auto pred = Window(0, width - 1);
    PlanDecision d = ChooseAccessPath(in, pred.get(), "ts");
    if (d.path != prev) ++flips;
    if (d.path != AccessPath::kIndexProbe) seen_scan = true;
    else EXPECT_FALSE(seen_scan) << "probe after scan at width " << width;
    prev = d.path;
  }
  EXPECT_TRUE(seen_scan);
  EXPECT_EQ(flips, 1);
}

// ---------------------------------------------------------------------------
// End-to-end: a live dataset with secondary_index_field = timestamp_ms.
// ---------------------------------------------------------------------------

struct PlannedFixture {
  DatasetFixture fx;
  std::vector<int64_t> timestamps;  // per inserted record

  void Load(int n, size_t partitions) {
    DatasetOptions o = SmallOptions(SchemaMode::kInferred, 128);
    o.secondary_index_field = "timestamp_ms";
    ASSERT_TRUE(fx.Open(std::move(o), partitions).ok());
    auto gen = MakeGenerator("twitter", 77);
    for (int i = 0; i < n; ++i) {
      AdmValue r = gen->NextRecord();
      timestamps.push_back(r.FindField("timestamp_ms")->int_value());
      ASSERT_TRUE(fx.dataset->Insert(r).ok());
    }
    // Flush so the secondary index has components -> fence-key domain bounds.
    ASSERT_TRUE(fx.dataset->FlushAll().ok());
  }

  uint64_t CountIn(int64_t lo, int64_t hi) const {  // exclusive bounds
    uint64_t n = 0;
    for (int64_t ts : timestamps) {
      if (ts > lo && ts < hi) ++n;
    }
    return n;
  }
};

TEST(PlannedScan, WindowCountSwitchesPlanWithSelectivity) {
  PlannedFixture pf;
  pf.Load(300, 2);
  // Timestamps are monotone; a window over the first ~8 records is ~3% of
  // the fence-key domain, far below the ~8% crossover.
  int64_t narrow_lo = pf.timestamps.front() - 1;
  int64_t narrow_hi = pf.timestamps[8];
  int64_t wide_lo = narrow_lo;
  int64_t wide_hi = pf.timestamps.back() + 1;

  QueryOptions opt;
  auto narrow = TwitterWindowCount(pf.fx.dataset.get(), narrow_lo, narrow_hi, opt);
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
  EXPECT_EQ(narrow.value().stats.plan, "index-probe");
  EXPECT_EQ(narrow.value().summary,
            "count=" + std::to_string(pf.CountIn(narrow_lo, narrow_hi)));
  EXPECT_GT(narrow.value().stats.plan_selectivity, 0.0);
  EXPECT_LT(narrow.value().stats.plan_selectivity, 0.1);

  auto wide = TwitterWindowCount(pf.fx.dataset.get(), wide_lo, wide_hi, opt);
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  EXPECT_EQ(wide.value().stats.plan, "filtered-scan");
  EXPECT_EQ(wide.value().summary, "count=300");

  // Lowering off: the wide window must run as full-scan with a row filter,
  // same count.
  QueryOptions no_push;
  no_push.pushdown_scan_predicates = false;
  auto full = TwitterWindowCount(pf.fx.dataset.get(), wide_lo, wide_hi, no_push);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().stats.plan, "full-scan");
  EXPECT_EQ(full.value().summary, "count=300");
}

// All three access paths deliver rows with identical column layout and
// identical contents for the same predicate.
TEST(PlannedScan, AccessPathsAgreeOnRowsAndLayout) {
  PlannedFixture pf;
  pf.Load(200, 2);
  int64_t lo = pf.timestamps.front() - 1;
  int64_t hi = pf.timestamps[10];
  auto pred = ScanPredicate::And(
      {ScanPredicate::Term("timestamp_ms", CompareOp::kGt, AdmValue::BigInt(lo)),
       ScanPredicate::Term("timestamp_ms", CompareOp::kLt, AdmValue::BigInt(hi))});
  std::vector<std::string> paths = {"id", "user.id"};

  struct RunResult {
    std::string plan;
    std::set<std::pair<int64_t, int64_t>> rows;
  };
  auto run = [&](const QueryOptions& opt,
                 std::shared_ptr<const ScanPredicate> p) -> RunResult {
    RunResult out;
    std::vector<std::set<std::pair<int64_t, int64_t>>> per(2);
    auto sink = [&](int pid) {
      auto* mine = &per[pid];
      return [mine](Row&& row) -> Status {
        EXPECT_EQ(row.cols.size(), 2u);
        mine->emplace(row.cols[0].int_value(), row.cols[1].int_value());
        return Status::OK();
      };
    };
    auto stats = RunPlannedScan(pf.fx.dataset.get(), opt, paths, p, sink);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats.ok()) out.plan = stats.value().plan;
    for (auto& s : per) out.rows.insert(s.begin(), s.end());
    return out;
  };

  QueryOptions dflt;
  RunResult probe = run(dflt, pred);
  EXPECT_EQ(probe.plan, "index-probe");
  EXPECT_EQ(probe.rows.size(), pf.CountIn(lo, hi));
  ASSERT_FALSE(probe.rows.empty());

  QueryOptions no_push;
  no_push.pushdown_scan_predicates = false;
  // Wide window under no-push: full scan. Use the narrow pred but force the
  // path comparison by disabling pushdown (probe still wins -> must compare
  // against a scan). To pin each path, rig via a non-sargable extra term.
  auto non_sarg = ScanPredicate::And(
      {ScanPredicate::Term("timestamp_ms", CompareOp::kGt, AdmValue::BigInt(lo)),
       ScanPredicate::Term("timestamp_ms", CompareOp::kLt, AdmValue::BigInt(hi)),
       ScanPredicate::Term("id", CompareOp::kGe, AdmValue::BigInt(0))});
  RunResult filtered = run(dflt, non_sarg);
  // The extra id-term's default selectivity shrinks the estimate further, so
  // the planner still probes — but results must not change either way.
  EXPECT_EQ(filtered.rows, probe.rows);

  RunResult full = run(no_push, non_sarg);
  EXPECT_EQ(full.rows, probe.rows);
}

TEST(PlannedScan, CollectPlannerInputsSeesLsmShape) {
  PlannedFixture pf;
  pf.Load(150, 2);
  PlannerInputs in = CollectPlannerInputs(pf.fx.dataset.get());
  EXPECT_EQ(in.rows, 150u);
  EXPECT_TRUE(in.has_secondary);
  EXPECT_GT(in.secondary_components, 0u);
  ASSERT_TRUE(in.sk_bounds_valid);
  EXPECT_EQ(in.sk_min, *std::min_element(pf.timestamps.begin(), pf.timestamps.end()));
  EXPECT_EQ(in.sk_max, *std::max_element(pf.timestamps.begin(), pf.timestamps.end()));
  EXPECT_EQ(in.partitions, 2u);
}

}  // namespace
}  // namespace tc
