// The transformation-embedded merge pipeline (paper §3.1.1 extended to
// merges): surviving records are re-encoded against the newest inferred
// schema while the merge rewrites them anyway, bottom-level outputs may move
// to a heavier codec, and merge candidates are scheduled by estimated rewrite
// value. Covers:
//   * the rewrite-value estimator's monotonicity (pure function);
//   * TupleCompactor::ReEncode units — compacted records pass through
//     byte-identical, uncompacted records come out compacted and lossless;
//   * randomized equivalence: a transforming dataset answers every query
//     identically to a splice-only one over the same ingest;
//   * the paper's convergence scenario — schemaless ingest reopened as an
//     inferred dataset leaves every record compacted after one merge cascade;
//   * cold recompression of bottom merges (component self-describes via LAF,
//     reads survive reopen) and the Open-time codec validation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adm/parser.h"
#include "adm/printer.h"
#include "core/tuple_compactor.h"
#include "lsm/merge_policy.h"
#include "tests/test_util.h"

namespace tc {
namespace {

using testutil::DatasetFixture;
using testutil::RandomRecord;
using testutil::SmallOptions;

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }

std::string_view View(const Buffer& b) {
  return std::string_view(reinterpret_cast<const char*>(b.data()), b.size());
}

// ---------------------------------------------------------------------------
// EstimateMergeRewriteValue
// ---------------------------------------------------------------------------

TEST(MergeRewriteValue, ZeroTotalScoresZero) {
  EXPECT_EQ(EstimateMergeRewriteValue(0, 0, 0, 2), 0.0);
  EXPECT_EQ(EstimateMergeRewriteValue(100, 0, 0, 0), 0.0);
}

TEST(MergeRewriteValue, PureSpliceOfOneComponentIsWorthless) {
  // fan_in == 1, nothing stale, nothing to recompress: no payoff at all.
  EXPECT_EQ(EstimateMergeRewriteValue(1 << 20, 0, 0, 1), 0.0);
}

TEST(MergeRewriteValue, MonotonicInEveryAxis) {
  const uint64_t total = 1 << 20;
  double base = EstimateMergeRewriteValue(total, 0, 0, 2);
  EXPECT_GT(base, 0.0);  // collapsing two components already pays
  // More stale-schema bytes -> strictly more value.
  EXPECT_GT(EstimateMergeRewriteValue(total, total / 4, 0, 2), base);
  EXPECT_GT(EstimateMergeRewriteValue(total, total, 0, 2),
            EstimateMergeRewriteValue(total, total / 4, 0, 2));
  // More recompressible bytes -> strictly more value.
  EXPECT_GT(EstimateMergeRewriteValue(total, 0, total / 2, 2), base);
  // Wider fan-in -> strictly more value (read-amplification payoff).
  EXPECT_GT(EstimateMergeRewriteValue(total, 0, 0, 4), base);
  EXPECT_GT(EstimateMergeRewriteValue(total, 0, 0, 8),
            EstimateMergeRewriteValue(total, 0, 0, 4));
}

TEST(MergeRewriteValue, StaleEverythingBeatsStaleNothingAtAnyFanIn) {
  for (size_t fan = 2; fan <= 6; ++fan) {
    EXPECT_GT(EstimateMergeRewriteValue(4096, 4096, 0, fan),
              EstimateMergeRewriteValue(4096, 0, 0, fan))
        << fan;
  }
}

// ---------------------------------------------------------------------------
// TupleCompactor::ReEncode
// ---------------------------------------------------------------------------

struct ReEncodeFixture {
  DatasetType type = DatasetType::OpenWithPk("id");
  TupleCompactor compactor{&type};

  Buffer EncodeRaw(const AdmValue& rec) {
    Buffer b;
    Status st = EncodeVectorRecord(rec, type, &b);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return b;
  }
};

TEST(ReEncode, UncompactedRecordComesOutCompactedAndLossless) {
  ReEncodeFixture fx;
  AdmValue rec = R(R"({"id": 1, "name": "Kim", "tags": ["a", "b"]})");
  Buffer raw = fx.EncodeRaw(rec);
  ASSERT_FALSE(VectorRecordView(raw.data(), raw.size()).compacted());

  Buffer out;
  bool rewritten = false;
  ASSERT_TRUE(fx.compactor.ReEncode(View(raw), &out, &rewritten).ok());
  EXPECT_TRUE(rewritten);
  VectorRecordView cv(out.data(), out.size());
  EXPECT_TRUE(cv.compacted());
  // Lossless through the merge-time inferred schema.
  Schema schema = fx.compactor.Snapshot();
  AdmValue decoded;
  ASSERT_TRUE(DecodeVectorRecord(cv, fx.type, &schema, &decoded).ok());
  EXPECT_EQ(PrintAdm(decoded), PrintAdm(rec));
}

TEST(ReEncode, CompactedRecordPassesThroughByteIdentical) {
  ReEncodeFixture fx;
  AdmValue rec = R(R"({"id": 2, "a": 7, "b": "x"})");
  Buffer raw = fx.EncodeRaw(rec);
  Buffer compacted;
  bool rewritten = false;
  ASSERT_TRUE(fx.compactor.ReEncode(View(raw), &compacted, &rewritten).ok());
  ASSERT_TRUE(rewritten);

  // Evolve the schema with unrelated fields, then re-encode the compacted
  // bytes: FieldNameIDs are globally stable, so the bytes must not move.
  Buffer other = fx.EncodeRaw(R(R"({"id": 3, "c": 1.5, "d": [2]})"));
  Buffer ignore;
  ASSERT_TRUE(fx.compactor.ReEncode(View(other), &ignore, nullptr).ok());

  Buffer again;
  rewritten = true;
  ASSERT_TRUE(fx.compactor.ReEncode(View(compacted), &again, &rewritten).ok());
  EXPECT_FALSE(rewritten);
  EXPECT_EQ(again, compacted);
}

// ---------------------------------------------------------------------------
// Dataset-level equivalence and convergence
// ---------------------------------------------------------------------------

DatasetOptions CascadeOptions(SchemaMode mode) {
  DatasetOptions o = SmallOptions(mode, /*memtable_kb=*/32);
  // Constant policy with k=1: every flush beyond the first triggers a full
  // merge, so the test exercises the pipeline on every component shape.
  o.merge.kind = MergePolicyKind::kConstant;
  o.merge.constant_k = 1;
  return o;
}

// A transforming dataset and a splice-only dataset fed the same randomized
// ingest (inserts, upserts, deletes, flushes, full-cascade merges) must
// answer every point query identically.
TEST(MergeTransform, RandomizedEquivalenceWithSpliceOnlyMerges) {
  Rng rng(20260808);
  DatasetFixture transformed, splice;
  DatasetOptions ot = CascadeOptions(SchemaMode::kInferred);
  DatasetOptions os = CascadeOptions(SchemaMode::kInferred);
  os.merge_transform = false;
  ASSERT_TRUE(transformed.Open(ot, /*partitions=*/2).ok());
  ASSERT_TRUE(splice.Open(os, /*partitions=*/2).ok());

  constexpr int64_t kKeys = 120;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 60; ++i) {
      int64_t pk = static_cast<int64_t>(rng.Uniform(kKeys));
      if (rng.Bernoulli(0.15)) {
        ASSERT_TRUE(transformed.dataset->Delete(pk).ok());
        ASSERT_TRUE(splice.dataset->Delete(pk).ok());
      } else {
        AdmValue rec = RandomRecord(&rng, pk, /*depth=*/3);
        ASSERT_TRUE(transformed.dataset->Upsert(rec).ok());
        ASSERT_TRUE(splice.dataset->Upsert(rec).ok());
      }
    }
    ASSERT_TRUE(transformed.dataset->FlushAll().ok());
    ASSERT_TRUE(splice.dataset->FlushAll().ok());
  }
  ASSERT_TRUE(transformed.dataset->WaitForBackgroundWork().ok());
  ASSERT_TRUE(splice.dataset->WaitForBackgroundWork().ok());

  for (int64_t pk = 0; pk < kKeys; ++pk) {
    auto a = transformed.dataset->Get(pk).ValueOrDie();
    auto b = splice.dataset->Get(pk).ValueOrDie();
    ASSERT_EQ(a.has_value(), b.has_value()) << pk;
    if (a.has_value()) {
      EXPECT_EQ(PrintAdm(*a), PrintAdm(*b)) << pk;
    }
  }
  // Inferred-mode records are compacted at flush time already, so merge-time
  // re-encoding must have passed every survivor through untouched — this is
  // the byte-stability property the passthrough fast path relies on.
  EXPECT_EQ(transformed.dataset->AggregateStats().merge_records_recompacted,
            0u);
  EXPECT_GT(transformed.dataset->AggregateStats().merge_count, 0u);
}

// The paper's convergence scenario: records ingested WITHOUT the compactor
// (schemaless vector format) get re-encoded against the inferred schema the
// first time a merge rewrites them, so the dataset converges to compacted
// storage without a dedicated rewrite pass — and the merged component
// persists the merge-inferred schema for recovery.
TEST(MergeTransform, SchemalessIngestConvergesUnderMergeCascade) {
  DatasetFixture fx;
  DatasetOptions schemaless = CascadeOptions(SchemaMode::kSchemalessVB);
  // No merges during the schemaless phase: keep the uncompacted components.
  schemaless.merge.kind = MergePolicyKind::kNoMerge;
  ASSERT_TRUE(fx.Open(schemaless, /*partitions=*/1).ok());
  std::vector<AdmValue> records;
  for (int64_t pk = 0; pk < 30; ++pk) {
    records.push_back(
        R(R"({"id": )" + std::to_string(pk) + R"(, "name": "u)" +
          std::to_string(pk) + R"(", "score": )" + std::to_string(pk * 3) +
          "}"));
    ASSERT_TRUE(fx.dataset->Insert(records.back()).ok());
    if (pk % 10 == 9) {
      ASSERT_TRUE(fx.dataset->FlushAll().ok());
    }
  }

  // Reopen as an inferred dataset: mid-stream "schema evolution" from
  // schemaless to compacted. The merge cascade triggered by the next flush
  // must leave ONE component whose records are all re-encoded.
  DatasetOptions inferred = CascadeOptions(SchemaMode::kInferred);
  ASSERT_TRUE(fx.Reopen(inferred, /*partitions=*/1).ok());
  ASSERT_TRUE(fx.dataset->Insert(R(R"({"id": 30, "name": "new"})")).ok());
  records.push_back(R(R"({"id": 30, "name": "new"})"));
  ASSERT_TRUE(fx.dataset->FlushAll().ok());
  ASSERT_TRUE(fx.dataset->WaitForBackgroundWork().ok());

  LsmStats s = fx.dataset->AggregateStats();
  EXPECT_GT(s.merge_count, 0u);
  EXPECT_EQ(s.merge_records_recompacted, 30u);  // every schemaless survivor
  EXPECT_GT(s.merge_bytes_recompacted, 0u);
  double share = s.MergePipelineCpuShare();
  EXPECT_GE(share, 0.0);
  EXPECT_LE(share, 1.0);

  // The cascade settled to one component holding every record, all compacted,
  // with the merge-inferred schema persisted in its metadata.
  auto view = fx.dataset->partition(0)->primary()->View();
  ASSERT_EQ(view.component_count(), 1u);
  EXPECT_GT(view.newest_schema_blob().size(), 0u);
  for (const auto& rec : records) {
    auto got = fx.dataset->Get(rec.FindField("id")->int_value()).ValueOrDie();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(PrintAdm(*got), PrintAdm(rec));
  }

  // Restart once more: the schema recovered from the MERGED component must
  // resolve the re-encoded records' FieldNameIDs.
  ASSERT_TRUE(fx.Reopen(CascadeOptions(SchemaMode::kInferred)).ok());
  for (const auto& rec : records) {
    auto got = fx.dataset->Get(rec.FindField("id")->int_value()).ValueOrDie();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(PrintAdm(*got), PrintAdm(rec));
  }
}

// ---------------------------------------------------------------------------
// Cold recompression
// ---------------------------------------------------------------------------

struct TreeFixture {
  std::shared_ptr<FileSystem> fs = MakeMemFileSystem();
  BufferCache cache{4096, 1024};

  LsmTreeOptions Options() {
    LsmTreeOptions o;
    o.fs = fs;
    o.cache = &cache;
    o.dir = "mt";
    o.name = "t";
    o.page_size = 4096;
    o.memtable_budget_bytes = 1 << 20;
    o.merge_policy = MakeConstantMergePolicy(1);
    o.wal_sync_every = 0;
    return o;
  }
};

TEST(MergeRecompress, BottomMergeSwitchesToHeavierCodecAndStaysReadable) {
  TreeFixture fx;
  LsmTreeOptions o = fx.Options();
  o.compression = CompressionKind::kSnappy;
  o.merge_recompress = CompressionKind::kHeavy;
  // Compressible payloads so both codecs actually engage.
  std::string v;
  for (int i = 0; i < 40; ++i) v += "abcdefgh";
  {
    auto t = LsmTree::Open(o).ValueOrDie();
    for (int64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(t->Insert(BtreeKey{k, 0}, v).ok());
    }
    ASSERT_TRUE(t->Flush().ok());
    for (int64_t k = 50; k < 100; ++k) {
      ASSERT_TRUE(t->Insert(BtreeKey{k, 0}, v).ok());
    }
    ASSERT_TRUE(t->Flush().ok());  // constant(1): inline full merge

    LsmStats s = t->stats();
    EXPECT_GT(s.merge_count, 0u);
    EXPECT_EQ(s.merge_components_recompressed, s.merge_count);
    EXPECT_GT(s.merge_bytes_recompressed, 0u);
    auto view = t->View();
    ASSERT_EQ(view.component_count(), 1u);
    EXPECT_EQ(view.components()[0]->compression(), CompressionKind::kHeavy);
    for (int64_t k = 0; k < 100; ++k) {
      auto got = t->Get(BtreeKey{k, 0}).ValueOrDie();
      ASSERT_TRUE(got.has_value()) << k;
      EXPECT_EQ(std::string(got->begin(), got->end()), v);
    }
  }
  // Reopen with the tree-level (snappy) codec: the recompressed component
  // self-describes via its LAF sidecar, so reads keep working.
  auto t = LsmTree::Open(o).ValueOrDie();
  auto view = t->View();
  ASSERT_EQ(view.component_count(), 1u);
  EXPECT_EQ(view.components()[0]->compression(), CompressionKind::kHeavy);
  auto got = t->Get(BtreeKey{99, 0}).ValueOrDie();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::string(got->begin(), got->end()), v);
}

TEST(MergeRecompress, NonBottomMergeKeepsTheTreeCodec) {
  TreeFixture fx;
  LsmTreeOptions o = fx.Options();
  o.compression = CompressionKind::kNone;
  o.merge_recompress = CompressionKind::kHeavy;
  // No-merge policy: build three components by hand-scheduled flushes, then
  // verify only BOTTOM merges recompress by checking a fresh flush stays
  // uncompressed while the merged (bottom) output switched codecs.
  auto t = LsmTree::Open(o).ValueOrDie();
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(t->Insert(BtreeKey{k, 0}, "payload").ok());
  }
  ASSERT_TRUE(t->Flush().ok());
  auto view = t->View();
  ASSERT_EQ(view.component_count(), 1u);
  // Flush output: tree codec, untouched by the recompression tier.
  EXPECT_EQ(view.components()[0]->compression(), CompressionKind::kNone);
}

TEST(MergeRecompress, OpenRejectsCodecThatIsNotCompiledIn) {
  bool zstd = CompressorAvailable(CompressionKind::kZstd);
  bool lz4 = CompressorAvailable(CompressionKind::kLz4);
  if (zstd && lz4) {
    GTEST_SKIP() << "all optional codecs compiled in";
  }
  TreeFixture fx;
  LsmTreeOptions o = fx.Options();
  o.merge_recompress = zstd ? CompressionKind::kLz4 : CompressionKind::kZstd;
  auto r = LsmTree::Open(o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace tc
