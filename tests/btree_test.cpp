#include <gtest/gtest.h>

#include "common/rng.h"
#include "lsm/btree_component.h"

namespace tc {
namespace {

struct BtreeFixture {
  std::shared_ptr<FileSystem> fs = MakeMemFileSystem();
  BufferCache cache{4096, 1024};

  std::shared_ptr<BtreeComponent> Build(
      const std::vector<std::tuple<int64_t, bool, std::string>>& entries,
      CompressionKind codec = CompressionKind::kNone) {
    auto compressor = GetCompressor(codec);
    auto b = BtreeComponentBuilder::Create(fs, "comp", 4096, compressor)
                 .ValueOrDie();
    for (const auto& [k, anti, payload] : entries) {
      Status st = b->Add(BtreeKey{k, 0}, anti, payload);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    EXPECT_TRUE(b->Finish(1, 1, {}).ok());
    EXPECT_TRUE(b->MarkValid().ok());
    return BtreeComponent::Open(fs, &cache, "comp", 4096, compressor).ValueOrDie();
  }
};

TEST(Btree, EmptyComponent) {
  BtreeFixture fx;
  auto c = fx.Build({});
  EXPECT_EQ(c->meta().n_entries, 0u);
  auto hit = c->Get(BtreeKey{1, 0}).ValueOrDie();
  EXPECT_FALSE(hit.has_value());
  BtreeComponent::Iterator it(c.get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_FALSE(it.Valid());
}

TEST(Btree, SingleLeafLookups) {
  BtreeFixture fx;
  auto c = fx.Build({{1, false, "one"}, {5, false, "five"}, {9, false, "nine"}});
  EXPECT_EQ(c->Get(BtreeKey{5, 0}).ValueOrDie()->payload,
            Buffer({'f', 'i', 'v', 'e'}));
  EXPECT_FALSE(c->Get(BtreeKey{4, 0}).ValueOrDie().has_value());
  EXPECT_FALSE(c->Get(BtreeKey{0, 0}).ValueOrDie().has_value());
  EXPECT_FALSE(c->Get(BtreeKey{10, 0}).ValueOrDie().has_value());
}

TEST(Btree, RejectsNonIncreasingKeys) {
  auto fs = MakeMemFileSystem();
  auto b = BtreeComponentBuilder::Create(fs, "x", 4096, nullptr).ValueOrDie();
  ASSERT_TRUE(b->Add(BtreeKey{5, 0}, false, "a").ok());
  EXPECT_FALSE(b->Add(BtreeKey{5, 0}, false, "b").ok());
  EXPECT_FALSE(b->Add(BtreeKey{4, 0}, false, "c").ok());
}

TEST(Btree, RejectsOversizedPayload) {
  auto fs = MakeMemFileSystem();
  auto b = BtreeComponentBuilder::Create(fs, "x", 4096, nullptr).ValueOrDie();
  std::string big(5000, 'x');
  EXPECT_FALSE(b->Add(BtreeKey{1, 0}, false, big).ok());
}

TEST(Btree, AntiMatterEntries) {
  BtreeFixture fx;
  auto c = fx.Build({{1, false, "live"}, {2, true, ""}, {3, false, "alive"}});
  EXPECT_EQ(c->meta().n_entries, 2u);
  EXPECT_EQ(c->meta().n_anti, 1u);
  auto hit = c->Get(BtreeKey{2, 0}).ValueOrDie();
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->anti);
}

class BtreeScale : public ::testing::TestWithParam<std::tuple<int, CompressionKind>> {
};

TEST_P(BtreeScale, MultiLevelPointAndRange) {
  auto [n, codec] = GetParam();
  BtreeFixture fx;
  std::vector<std::tuple<int64_t, bool, std::string>> entries;
  for (int i = 0; i < n; ++i) {
    // Sparse keys to exercise miss paths.
    entries.emplace_back(i * 3, false, "payload_" + std::to_string(i * 3));
  }
  auto c = fx.Build(entries, codec);
  EXPECT_EQ(c->meta().n_entries, static_cast<uint64_t>(n));
  EXPECT_EQ(c->meta().min_key.a, 0);
  EXPECT_EQ(c->meta().max_key.a, (n - 1) * 3);
  if (n > 200) {
    EXPECT_GT(c->page_count(), 2u);  // must be multi-level
  }

  Rng rng(n);
  for (int t = 0; t < 500; ++t) {
    int64_t k = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(n * 3)));
    auto hit = c->Get(BtreeKey{k, 0}).ValueOrDie();
    if (k % 3 == 0) {
      ASSERT_TRUE(hit.has_value()) << k;
      EXPECT_EQ(std::string(hit->payload.begin(), hit->payload.end()),
                "payload_" + std::to_string(k));
    } else {
      EXPECT_FALSE(hit.has_value()) << k;
    }
  }

  // Full scan returns every key in order.
  BtreeComponent::Iterator it(c.get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  int count = 0;
  int64_t prev = -1;
  while (it.Valid()) {
    EXPECT_GT(it.key().a, prev);
    prev = it.key().a;
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, n);

  // Seek semantics: first key >= target.
  if (n >= 4) {
    ASSERT_TRUE(it.Seek(BtreeKey{7, 0}).ok());
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key().a, 9);
  }
  ASSERT_TRUE(it.Seek(BtreeKey{(n - 1) * 3 + 1, 0}).ok());
  EXPECT_FALSE(it.Valid());
  ASSERT_TRUE(it.Seek(BtreeKey{-100, 0}).ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().a, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BtreeScale,
    ::testing::Combine(::testing::Values(1, 10, 500, 5000),
                       ::testing::Values(CompressionKind::kNone,
                                         CompressionKind::kSnappy)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == CompressionKind::kNone ? "_raw" : "_snappy");
    });

TEST(Btree, CompositeKeyOrdering) {
  BtreeFixture fx;
  auto fs = fx.fs;
  auto b = BtreeComponentBuilder::Create(fs, "comp2", 4096, nullptr).ValueOrDie();
  // Secondary-index style: same .a, different .b.
  ASSERT_TRUE(b->Add(BtreeKey{10, 1}, false, "").ok());
  ASSERT_TRUE(b->Add(BtreeKey{10, 2}, false, "").ok());
  ASSERT_TRUE(b->Add(BtreeKey{11, 0}, false, "").ok());
  ASSERT_TRUE(b->Finish(1, 1, {}).ok());
  ASSERT_TRUE(b->MarkValid().ok());
  auto c = BtreeComponent::Open(fs, &fx.cache, "comp2", 4096, nullptr).ValueOrDie();
  BtreeComponent::Iterator it(c.get());
  ASSERT_TRUE(it.Seek(BtreeKey{10, INT64_MIN}).ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().b, 1);
  ASSERT_TRUE(it.Next().ok());
  EXPECT_EQ(it.key().b, 2);
}

TEST(Btree, SchemaBlobPersistsAcrossPages) {
  BtreeFixture fx;
  auto b = BtreeComponentBuilder::Create(fx.fs, "blob", 4096, nullptr).ValueOrDie();
  ASSERT_TRUE(b->Add(BtreeKey{1, 0}, false, "x").ok());
  Buffer blob(10000);  // spans 3 metadata pages
  for (size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<uint8_t>(i * 7);
  ASSERT_TRUE(b->Finish(3, 7, blob).ok());
  ASSERT_TRUE(b->MarkValid().ok());
  auto c = BtreeComponent::Open(fx.fs, &fx.cache, "blob", 4096, nullptr).ValueOrDie();
  EXPECT_EQ(c->meta().cid_min, 3u);
  EXPECT_EQ(c->meta().cid_max, 7u);
  EXPECT_EQ(c->meta().schema_blob, blob);
}

TEST(Btree, ValidityMarkerLifecycle) {
  auto fs = MakeMemFileSystem();
  auto b = BtreeComponentBuilder::Create(fs, "v", 4096, nullptr).ValueOrDie();
  ASSERT_TRUE(b->Add(BtreeKey{1, 0}, false, "x").ok());
  ASSERT_TRUE(b->Finish(1, 1, {}).ok());
  // Finished but not valid: a crash here must discard the component (§3.1.2).
  EXPECT_FALSE(BtreeComponent::IsValid(fs.get(), "v"));
  ASSERT_TRUE(b->MarkValid().ok());
  EXPECT_TRUE(BtreeComponent::IsValid(fs.get(), "v"));
  ASSERT_TRUE(BtreeComponent::Destroy(fs.get(), "v").ok());
  EXPECT_FALSE(fs->Exists("v"));
  EXPECT_FALSE(fs->Exists("v.valid"));
}

TEST(Btree, FooterCorruptionDetected) {
  BtreeFixture fx;
  auto c = fx.Build({{1, false, "x"}});
  // Flip a byte in the footer (last page) of the underlying file.
  auto f = fx.fs->Open("comp").ValueOrDie();
  uint64_t size = f->Size();
  uint8_t byte;
  ASSERT_TRUE(f->Read(size - 4096 + 6, 1, &byte).ok());
  byte ^= 0x40;
  ASSERT_TRUE(f->Write(size - 4096 + 6, &byte, 1).ok());
  EXPECT_FALSE(BtreeComponent::Open(fx.fs, &fx.cache, "comp", 4096, nullptr).ok());
}

}  // namespace
}  // namespace tc
