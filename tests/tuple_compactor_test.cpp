#include <gtest/gtest.h>

#include "adm/parser.h"
#include "adm/printer.h"
#include "core/tuple_compactor.h"
#include "tests/test_util.h"

namespace tc {
namespace {

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }

struct CompactorFixture {
  DatasetType type = DatasetType::OpenWithPk("id");
  TupleCompactor compactor{&type};

  Buffer EncodeRaw(const AdmValue& rec) {
    Buffer b;
    Status st = EncodeVectorRecord(rec, type, &b);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return b;
  }

  Buffer FlushOne(const AdmValue& rec) {
    Buffer raw = EncodeRaw(rec);
    Buffer out;
    Status st = compactor.TransformLive(
        std::string_view(reinterpret_cast<const char*>(raw.data()), raw.size()),
        &out);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }
};

TEST(TupleCompactor, Figure9FlushFlow) {
  CompactorFixture fx;
  ASSERT_TRUE(fx.compactor.OnFlushBegin().ok());
  (void)fx.FlushOne(R(R"({"id": 0, "name": "Kim", "age": 26})"));
  (void)fx.FlushOne(R(R"({"id": 1, "name": "John", "age": 22})"));
  Buffer s0;
  ASSERT_TRUE(fx.compactor.OnFlushEnd(&s0).ok());
  EXPECT_EQ(fx.compactor.Snapshot().ToString(),
            "{name:string(2), age:bigint(2)}(2)");

  // Second flush: age widens to union(int, string) — Figure 9b.
  (void)fx.FlushOne(R(R"({"id": 2, "name": "Ann"})"));
  (void)fx.FlushOne(R(R"({"id": 3, "name": "Bob", "age": "old"})"));
  Buffer s1;
  ASSERT_TRUE(fx.compactor.OnFlushEnd(&s1).ok());
  EXPECT_EQ(fx.compactor.Snapshot().ToString(),
            "{name:string(4), age:union(3)<bigint(2)|string(1)>}(4)");
  EXPECT_GT(s1.size(), 0u);
  EXPECT_NE(s0, s1);
}

TEST(TupleCompactor, CompactedRecordsDecodeUnderLaterSchemas) {
  CompactorFixture fx;
  AdmValue rec = R(R"({"id": 7, "a": 1, "b": "x"})");
  Buffer compacted = fx.FlushOne(rec);
  // Evolve the schema with new fields.
  (void)fx.FlushOne(R(R"({"id": 8, "c": [1, 2], "d": {"e": true}})"));
  Schema later = fx.compactor.Snapshot();
  AdmValue out;
  ASSERT_TRUE(DecodeVectorRecord(
                  VectorRecordView(compacted.data(), compacted.size()), fx.type,
                  &later, &out)
                  .ok());
  EXPECT_EQ(out, rec);  // IDs are stable across schema evolution
}

TEST(TupleCompactor, AntiSchemaOnRemovedVersion) {
  CompactorFixture fx;
  AdmValue rec = R(R"({"id": 1, "only_here": point(1.0, 2.0), "shared": 5})");
  Buffer compacted = fx.FlushOne(rec);
  (void)fx.FlushOne(R(R"({"id": 2, "shared": 6})"));
  EXPECT_EQ(fx.compactor.Snapshot().ToString(),
            "{only_here:point(1), shared:bigint(2)}(2)");
  // The record is upserted: the flush processes its old version's anti-schema.
  ASSERT_TRUE(fx.compactor
                  .OnRemovedVersion(std::string_view(
                      reinterpret_cast<const char*>(compacted.data()),
                      compacted.size()))
                  .ok());
  EXPECT_EQ(fx.compactor.Snapshot().ToString(), "{shared:bigint(1)}(1)");
}

TEST(TupleCompactor, LoadSchemaRestoresState) {
  CompactorFixture fx;
  (void)fx.FlushOne(R(R"({"id": 1, "x": 1.5, "y": [true]})"));
  Buffer blob;
  ASSERT_TRUE(fx.compactor.OnFlushEnd(&blob).ok());

  DatasetType type2 = DatasetType::OpenWithPk("id");
  TupleCompactor restored(&type2);
  ASSERT_TRUE(restored.LoadSchema(blob).ok());
  EXPECT_EQ(restored.Snapshot().ToString(), fx.compactor.Snapshot().ToString());
  // And it keeps compacting consistently: same record, same dictionary IDs.
  Buffer raw;
  ASSERT_TRUE(EncodeVectorRecord(R(R"({"id": 2, "x": 2.5, "y": [false]})"), type2,
                                 &raw)
                  .ok());
  Buffer out;
  ASSERT_TRUE(restored
                  .TransformLive(std::string_view(
                                     reinterpret_cast<const char*>(raw.data()),
                                     raw.size()),
                                 &out)
                  .ok());
  EXPECT_EQ(restored.Snapshot().ToString(), "{x:double(2), y:array(2)<boolean(2)>}(2)");
}

TEST(TupleCompactor, CompactionIsLossless) {
  CompactorFixture fx;
  Rng rng(161);
  for (int i = 0; i < 150; ++i) {
    AdmValue rec = testutil::RandomRecord(&rng, i, 4);
    Buffer compacted = fx.FlushOne(rec);
    Schema snap = fx.compactor.Snapshot();
    AdmValue out;
    ASSERT_TRUE(DecodeVectorRecord(
                    VectorRecordView(compacted.data(), compacted.size()), fx.type,
                    &snap, &out)
                    .ok());
    EXPECT_EQ(PrintAdm(out), PrintAdm(rec)) << i;
  }
}

}  // namespace
}  // namespace tc
