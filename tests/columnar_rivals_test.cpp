#include <gtest/gtest.h>

#include "format/columnar_rivals.h"
#include "format/vector_format.h"
#include "workload/workload.h"

namespace tc {
namespace {

// A tiny fixed schema: struct { 1: i64 id, 2: string name, 3: list<i64> nums }.
TypeDescriptor::Ptr TinyType() {
  auto t = TypeDescriptor::Object(false);
  t->AddField("id", TypeDescriptor::Scalar(AdmTag::kBigInt));
  t->AddField("name", TypeDescriptor::Scalar(AdmTag::kString));
  t->AddField("nums", TypeDescriptor::Collection(
                          AdmTag::kArray, TypeDescriptor::Scalar(AdmTag::kBigInt)));
  return t;
}

AdmValue TinyRecord() {
  AdmValue r = AdmValue::Object();
  r.AddField("id", AdmValue::BigInt(2));
  r.AddField("name", AdmValue::String("ab"));
  AdmValue nums = AdmValue::Array();
  nums.Append(AdmValue::BigInt(1));
  nums.Append(AdmValue::BigInt(-1));
  r.AddField("nums", std::move(nums));
  return r;
}

TEST(Avro, GoldenBytes) {
  Buffer b;
  ASSERT_TRUE(EncodeAvro(TinyRecord(), *TinyType(), &b).ok());
  // id=2 -> zigzag 4; "ab" -> len 2 (zigzag 4) 'a' 'b';
  // nums -> block count 2 (zigzag 4), 1 -> 2, -1 -> 1, end block 0.
  const uint8_t expected[] = {0x04, 0x04, 'a', 'b', 0x04, 0x02, 0x01, 0x00};
  ASSERT_EQ(b.size(), sizeof(expected));
  EXPECT_EQ(0, memcmp(b.data(), expected, sizeof(expected)));
}

TEST(Avro, OptionalFieldUnionBranch) {
  auto t = TypeDescriptor::Object(false);
  t->AddField("opt", TypeDescriptor::Scalar(AdmTag::kBigInt, /*optional=*/true));
  AdmValue absent = AdmValue::Object();
  Buffer b;
  ASSERT_TRUE(EncodeAvro(absent, *t, &b).ok());
  EXPECT_EQ(b.size(), 1u);  // union branch 0 (null)
  EXPECT_EQ(b[0], 0x00);
  AdmValue present = AdmValue::Object();
  present.AddField("opt", AdmValue::BigInt(1));
  b.clear();
  ASSERT_TRUE(EncodeAvro(present, *t, &b).ok());
  const uint8_t expected[] = {0x02, 0x02};  // branch 1, zigzag(1)
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(0, memcmp(b.data(), expected, 2));
}

TEST(Avro, RequiredFieldMissingFails) {
  AdmValue r = AdmValue::Object();
  Buffer b;
  EXPECT_FALSE(EncodeAvro(r, *TinyType(), &b).ok());
}

TEST(ThriftBinary, GoldenBytes) {
  Buffer b;
  ASSERT_TRUE(EncodeThriftBinary(TinyRecord(), *TinyType(), &b).ok());
  const uint8_t expected[] = {
      0x0A, 0x00, 0x01, 0, 0, 0, 0, 0, 0, 0, 2,        // i64 id=2
      0x0B, 0x00, 0x02, 0, 0, 0, 2, 'a', 'b',          // string name="ab"
      0x0F, 0x00, 0x03, 0x0A, 0, 0, 0, 2,              // list<i64> size 2
      0, 0, 0, 0, 0, 0, 0, 1,                          // 1
      0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,  // -1
      0x00,                                            // STOP
  };
  ASSERT_EQ(b.size(), sizeof(expected));
  EXPECT_EQ(0, memcmp(b.data(), expected, sizeof(expected)));
}

TEST(ThriftCompact, GoldenBytes) {
  Buffer b;
  ASSERT_TRUE(EncodeThriftCompact(TinyRecord(), *TinyType(), &b).ok());
  const uint8_t expected[] = {
      0x16, 0x04,             // field 1 (delta 1), type i64; zigzag(2)=4
      0x18, 0x02, 'a', 'b',   // field 2, type binary; varint len 2
      0x19, 0x26, 0x02, 0x01, // field 3, list; (2<<4)|6; zigzag(1), zigzag(-1)
      0x00,                   // STOP
  };
  ASSERT_EQ(b.size(), sizeof(expected));
  EXPECT_EQ(0, memcmp(b.data(), expected, sizeof(expected)));
}

TEST(ThriftCompact, BoolInFieldHeader) {
  auto t = TypeDescriptor::Object(false);
  t->AddField("flag", TypeDescriptor::Scalar(AdmTag::kBoolean));
  AdmValue r = AdmValue::Object();
  r.AddField("flag", AdmValue::Boolean(true));
  Buffer b;
  ASSERT_TRUE(EncodeThriftCompact(r, *t, &b).ok());
  const uint8_t expected_true[] = {0x11, 0x00};  // delta 1, BOOLEAN_TRUE; STOP
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(0, memcmp(b.data(), expected_true, 2));
}

TEST(Protobuf, GoldenBytes) {
  Buffer b;
  ASSERT_TRUE(EncodeProtobuf(TinyRecord(), *TinyType(), &b).ok());
  const uint8_t expected[] = {
      0x08, 0x02,              // field 1 varint: 2
      0x12, 0x02, 'a', 'b',    // field 2 len-delim: "ab"
      0x1A, 0x0B,              // field 3 len-delim (packed): 11 bytes
      0x01,                    // 1
      0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01,  // -1
  };
  ASSERT_EQ(b.size(), sizeof(expected));
  EXPECT_EQ(0, memcmp(b.data(), expected, sizeof(expected)));
}

TEST(Protobuf, NestedMessageLengthDelimited) {
  auto inner = TypeDescriptor::Object(false);
  inner->AddField("x", TypeDescriptor::Scalar(AdmTag::kBigInt));
  auto outer = TypeDescriptor::Object(false);
  outer->AddField("m", inner);
  AdmValue r = AdmValue::Object();
  AdmValue m = AdmValue::Object();
  m.AddField("x", AdmValue::BigInt(7));
  r.AddField("m", std::move(m));
  Buffer b;
  ASSERT_TRUE(EncodeProtobuf(r, *outer, &b).ok());
  const uint8_t expected[] = {0x0A, 0x02, 0x08, 0x07};
  ASSERT_EQ(b.size(), sizeof(expected));
  EXPECT_EQ(0, memcmp(b.data(), expected, sizeof(expected)));
}

TEST(Rivals, AllEncodeRealTweets) {
  auto gen = MakeTwitterGenerator(1);
  DatasetType closed = gen->ClosedType();
  for (int i = 0; i < 50; ++i) {
    AdmValue tweet = gen->NextRecord();
    Buffer avro, bp, cp, pb;
    ASSERT_TRUE(EncodeAvro(tweet, *closed.root, &avro).ok()) << i;
    ASSERT_TRUE(EncodeThriftBinary(tweet, *closed.root, &bp).ok()) << i;
    ASSERT_TRUE(EncodeThriftCompact(tweet, *closed.root, &cp).ok()) << i;
    ASSERT_TRUE(EncodeProtobuf(tweet, *closed.root, &pb).ok()) << i;
    EXPECT_GT(avro.size(), 0u);
    // Schema-driven formats beat the self-describing vector format on size
    // for name-free encoding, and compact < binary protocol (paper Table 2).
    EXPECT_LT(cp.size(), bp.size());
  }
}

TEST(Rivals, ShapeMismatchRejected) {
  auto t = TypeDescriptor::Object(false);
  t->AddField("id", TypeDescriptor::Scalar(AdmTag::kBigInt));
  AdmValue r = AdmValue::Object();
  r.AddField("id", AdmValue::String("not-an-int"));
  Buffer b;
  EXPECT_FALSE(EncodeAvro(r, *t, &b).ok());
  EXPECT_FALSE(EncodeThriftBinary(r, *t, &b).ok());
  EXPECT_FALSE(EncodeThriftCompact(r, *t, &b).ok());
}

}  // namespace
}  // namespace tc
