#include <gtest/gtest.h>

#include "adm/parser.h"
#include "adm/printer.h"
#include "format/vector_format.h"
#include "schema/inference.h"
#include "tests/test_util.h"

namespace tc {
namespace {

AdmValue R(const std::string& text) { return ParseAdm(text).ValueOrDie(); }
DatasetType PkType() { return DatasetType::OpenWithPk("id"); }

Buffer Encode(const AdmValue& rec, const DatasetType& type) {
  Buffer out;
  Status st = EncodeVectorRecord(rec, type, &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(VectorFormat, HeaderAndValidate) {
  DatasetType type = PkType();
  Buffer b = Encode(R(R"({"id": 6, "name": "Ann", "salaries": [70000, 90000], "age": 26})"),
                    type);
  VectorRecordView view(b.data(), b.size());
  ASSERT_TRUE(view.Validate().ok());
  EXPECT_EQ(view.total_length(), b.size());
  // Paper Figure 13: object,int,string,array,int,int,end,int,EOV = 9 tags.
  EXPECT_EQ(view.tag_count(), 9u);
  EXPECT_FALSE(view.compacted());
}

TEST(VectorFormat, DecodeRoundTripSimple) {
  DatasetType type = PkType();
  AdmValue rec = R(R"({"id": 6, "name": "Ann", "salaries": [70000, 90000], "age": 26})");
  Buffer b = Encode(rec, type);
  AdmValue out;
  ASSERT_TRUE(
      DecodeVectorRecord(VectorRecordView(b.data(), b.size()), type, nullptr, &out)
          .ok());
  EXPECT_EQ(out, rec);
}

TEST(VectorFormat, DecodeRoundTripPaperAppendixB) {
  DatasetType type = PkType();
  AdmValue rec = R(R"({
    "id": 1, "name": "Ann",
    "dependents": {{ {"name": "Bob", "age": 6}, {"name": "Carol", "age": 10},
                     "Not_Available" }},
    "employment_date": date("2018-09-20"),
    "branch_location": point(24.0, -56.12)
  })");
  Buffer b = Encode(rec, type);
  AdmValue out;
  ASSERT_TRUE(
      DecodeVectorRecord(VectorRecordView(b.data(), b.size()), type, nullptr, &out)
          .ok());
  EXPECT_EQ(out, rec);
}

TEST(VectorFormat, MissingFieldsAreDropped) {
  DatasetType type = PkType();
  AdmValue rec = AdmValue::Object();
  rec.AddField("id", AdmValue::BigInt(5));
  rec.AddField("gone", AdmValue::Missing());
  rec.AddField("kept", AdmValue::BigInt(1));
  Buffer b = Encode(rec, type);
  AdmValue out;
  ASSERT_TRUE(
      DecodeVectorRecord(VectorRecordView(b.data(), b.size()), type, nullptr, &out)
          .ok());
  EXPECT_EQ(out.field_count(), 2u);
  EXPECT_EQ(out.FindField("gone"), nullptr);
}

TEST(VectorFormat, PropertyRandomRoundTrip) {
  DatasetType type = PkType();
  Rng rng(2024);
  for (int i = 0; i < 400; ++i) {
    AdmValue rec = testutil::RandomRecord(&rng, i, 5);
    Buffer b;
    ASSERT_TRUE(EncodeVectorRecord(rec, type, &b).ok());
    VectorRecordView view(b.data(), b.size());
    ASSERT_TRUE(view.Validate().ok());
    AdmValue out;
    ASSERT_TRUE(DecodeVectorRecord(view, type, nullptr, &out).ok())
        << PrintAdm(rec);
    // Missing-valued fields are dropped on encode; re-encode to normalize.
    AdmValue normalized = rec;
    EXPECT_EQ(PrintAdm(out), PrintAdm(normalized)) << i;
  }
}

TEST(VectorFormat, CompactionShrinksAndRoundTrips) {
  DatasetType type = PkType();
  AdmValue rec = R(R"({"id": 6, "name": "Ann", "salaries": [70000, 90000], "age": 26})");
  Buffer raw = Encode(rec, type);
  Schema schema;
  Buffer compacted;
  ASSERT_TRUE(InferAndCompactVectorRecord(VectorRecordView(raw.data(), raw.size()),
                                          type, &schema, &compacted)
                  .ok());
  // Paper Figure 14: compaction replaces inline names with FieldNameIDs.
  EXPECT_LT(compacted.size(), raw.size());
  VectorRecordView cview(compacted.data(), compacted.size());
  ASSERT_TRUE(cview.Validate().ok());
  EXPECT_TRUE(cview.compacted());
  AdmValue out;
  ASSERT_TRUE(DecodeVectorRecord(cview, type, &schema, &out).ok());
  EXPECT_EQ(out, rec);
  // Dictionary got name/salaries/age (ids 1..3), not the declared id.
  EXPECT_EQ(schema.dict().size(), 3u);
  EXPECT_EQ(schema.dict().Lookup("id"), FieldNameDictionary::kInvalidId);
}

TEST(VectorFormat, InferMatchesAdmValueInference) {
  // Flush-path inference over bytes must equal inference over the tree.
  DatasetType type = PkType();
  Rng rng(31337);
  Schema from_bytes, from_tree;
  for (int i = 0; i < 200; ++i) {
    AdmValue rec = testutil::RandomRecord(&rng, i, 4);
    Buffer b;
    ASSERT_TRUE(EncodeVectorRecord(rec, type, &b).ok());
    ASSERT_TRUE(
        InferVectorRecord(VectorRecordView(b.data(), b.size()), type, &from_bytes)
            .ok());
    ASSERT_TRUE(InferRecord(&from_tree, rec, type.root.get()).ok());
  }
  EXPECT_EQ(from_bytes.ToString(), from_tree.ToString());
}

TEST(VectorFormat, PropertyCompactionRoundTrip) {
  DatasetType type = PkType();
  Rng rng(777);
  Schema schema;
  std::vector<AdmValue> records;
  std::vector<Buffer> compacted;
  for (int i = 0; i < 300; ++i) {
    records.push_back(testutil::RandomRecord(&rng, i, 5));
    Buffer raw;
    ASSERT_TRUE(EncodeVectorRecord(records.back(), type, &raw).ok());
    Buffer c;
    ASSERT_TRUE(InferAndCompactVectorRecord(VectorRecordView(raw.data(), raw.size()),
                                            type, &schema, &c)
                    .ok());
    compacted.push_back(std::move(c));
  }
  // Every record decodes identically under the final (superset) schema.
  for (size_t i = 0; i < records.size(); ++i) {
    AdmValue out;
    ASSERT_TRUE(DecodeVectorRecord(
                    VectorRecordView(compacted[i].data(), compacted[i].size()),
                    type, &schema, &out)
                    .ok());
    EXPECT_EQ(PrintAdm(out), PrintAdm(records[i])) << i;
  }
}

TEST(VectorFormat, RemoveVectorRecordMirrorsInference) {
  DatasetType type = PkType();
  Rng rng(55);
  Schema schema;
  std::vector<Buffer> raws;
  for (int i = 0; i < 50; ++i) {
    AdmValue rec = testutil::RandomRecord(&rng, i, 4);
    Buffer b;
    ASSERT_TRUE(EncodeVectorRecord(rec, type, &b).ok());
    ASSERT_TRUE(
        InferVectorRecord(VectorRecordView(b.data(), b.size()), type, &schema).ok());
    raws.push_back(std::move(b));
  }
  for (const Buffer& b : raws) {
    ASSERT_TRUE(
        RemoveVectorRecord(VectorRecordView(b.data(), b.size()), type, &schema).ok());
  }
  EXPECT_EQ(schema.ToString(), "{}(0)");
}

TEST(VectorFormat, CompactedSavesVersusAdmNames) {
  // A record dominated by field names must shrink substantially on compaction
  // (the "semantic" savings of §4.2).
  DatasetType type = PkType();
  AdmValue rec = AdmValue::Object();
  rec.AddField("id", AdmValue::BigInt(1));
  for (int i = 0; i < 50; ++i) {
    rec.AddField("a_rather_long_field_name_" + std::to_string(i),
                 AdmValue::BigInt(i));
  }
  Buffer raw = Encode(rec, type);
  Schema schema;
  Buffer compacted;
  ASSERT_TRUE(InferAndCompactVectorRecord(VectorRecordView(raw.data(), raw.size()),
                                          type, &schema, &compacted)
                  .ok());
  EXPECT_LT(compacted.size() * 2, raw.size());
}

TEST(VectorFormat, ValidateRejectsCorruption) {
  DatasetType type = PkType();
  Buffer b = Encode(R(R"({"id": 1, "x": "y"})"), type);
  // Truncated.
  EXPECT_FALSE(VectorRecordView(b.data(), b.size() - 1).Validate().ok());
  // Length mismatch.
  Buffer bad = b;
  OverwriteFixed32(&bad, 0, static_cast<uint32_t>(bad.size() + 4));
  EXPECT_FALSE(VectorRecordView(bad.data(), bad.size()).Validate().ok());
  // Bad offset ordering.
  bad = b;
  OverwriteFixed32(&bad, 10, 0);
  EXPECT_FALSE(VectorRecordView(bad.data(), bad.size()).Validate().ok());
}

TEST(VectorFormat, AnalyzeRegions) {
  DatasetType type = PkType();
  Buffer b = Encode(R(R"({"id": 6, "name": "Ann", "salaries": [70000, 90000], "age": 26})"),
                    type);
  auto stats = AnalyzeVectorRecord(VectorRecordView(b.data(), b.size()));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().header, kVectorHeaderSize);
  EXPECT_EQ(stats.value().tags, 9u);
  // Fixed values: id(8) + two salaries(16) + age(8) = 32 bytes.
  EXPECT_EQ(stats.value().fixed, 32u);
  EXPECT_EQ(stats.value().var_values, 3u);  // "Ann"
  EXPECT_GT(stats.value().name_values, 0u);
  size_t total = stats.value().header + stats.value().tags + stats.value().fixed +
                 stats.value().var_lengths + stats.value().var_values +
                 stats.value().name_slots + stats.value().name_values;
  EXPECT_EQ(total, b.size());
}

TEST(VectorFormat, DeclaredIndexFlagBit) {
  // Two declared fields: id and name; only "extra" is inferred.
  DatasetType type;
  type.primary_key_field = "id";
  type.root = TypeDescriptor::Object(true);
  type.root->AddField("id", TypeDescriptor::Scalar(AdmTag::kBigInt));
  type.root->AddField("name", TypeDescriptor::Scalar(AdmTag::kString));
  AdmValue rec = R(R"({"id": 9, "name": "Zoe", "extra": true})");
  Buffer b = Encode(rec, type);
  Schema schema;
  Buffer c;
  ASSERT_TRUE(InferAndCompactVectorRecord(VectorRecordView(b.data(), b.size()),
                                          type, &schema, &c)
                  .ok());
  EXPECT_EQ(schema.dict().size(), 1u);  // only "extra"
  EXPECT_EQ(schema.ToString(), "{extra:boolean(1)}(1)");
  AdmValue out;
  ASSERT_TRUE(DecodeVectorRecord(VectorRecordView(c.data(), c.size()), type,
                                 &schema, &out)
                  .ok());
  EXPECT_EQ(out, rec);
}

TEST(VectorFormat, EmptyContainers) {
  DatasetType type = PkType();
  AdmValue rec = R(R"({"id": 1, "empty_arr": [], "empty_obj": {}, "empty_ms": {{}}})");
  Buffer b = Encode(rec, type);
  AdmValue out;
  ASSERT_TRUE(
      DecodeVectorRecord(VectorRecordView(b.data(), b.size()), type, nullptr, &out)
          .ok());
  EXPECT_EQ(out, rec);
}

TEST(VectorFormat, LongStringsUseWiderLengthBits) {
  DatasetType type = PkType();
  AdmValue rec = AdmValue::Object();
  rec.AddField("id", AdmValue::BigInt(1));
  rec.AddField("s", AdmValue::String(std::string(100000, 'x')));  // > 64 KiB
  Buffer b = Encode(rec, type);
  VectorRecordView view(b.data(), b.size());
  ASSERT_TRUE(view.Validate().ok());
  EXPECT_GT(view.var_len_bits(), 16);
  AdmValue out;
  ASSERT_TRUE(DecodeVectorRecord(view, type, nullptr, &out).ok());
  EXPECT_EQ(out, rec);
}

}  // namespace
}  // namespace tc
