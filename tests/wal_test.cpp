#include <gtest/gtest.h>

#include "lsm/wal.h"

namespace tc {
namespace {

TEST(Wal, AppendAndReplay) {
  auto fs = MakeMemFileSystem();
  auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{1, 0}, "hello").ValueOrDie(), 1u);
  EXPECT_EQ(wal->Append(WalOp::kDelete, BtreeKey{2, 0}, "").ValueOrDie(), 2u);
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{3, 0}, "x").ValueOrDie(), 3u);

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal->Replay([&](const WalRecord& r) {
                    records.push_back(r);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[0].op, WalOp::kPut);
  EXPECT_EQ(records[0].key.a, 1);
  EXPECT_EQ(std::string(records[0].payload.begin(), records[0].payload.end()),
            "hello");
  EXPECT_EQ(records[1].op, WalOp::kDelete);
}

TEST(Wal, ReopenContinuesLsns) {
  auto fs = MakeMemFileSystem();
  {
    auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
    (void)wal->Append(WalOp::kPut, BtreeKey{1, 0}, "a").ValueOrDie();
    (void)wal->Append(WalOp::kPut, BtreeKey{2, 0}, "b").ValueOrDie();
  }
  auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
  EXPECT_EQ(wal->next_lsn(), 3u);
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{3, 0}, "c").ValueOrDie(), 3u);
}

TEST(Wal, TornTailIsIgnored) {
  auto fs = MakeMemFileSystem();
  auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
  (void)wal->Append(WalOp::kPut, BtreeKey{1, 0}, "good").ValueOrDie();
  (void)wal->Append(WalOp::kPut, BtreeKey{2, 0}, "torn-record").ValueOrDie();
  // Corrupt the tail record's payload byte -> crc mismatch.
  auto f = fs->Open("log").ValueOrDie();
  uint64_t size = f->Size();
  uint8_t b;
  ASSERT_TRUE(f->Read(size - 2, 1, &b).ok());
  b ^= 0xFF;
  ASSERT_TRUE(f->Write(size - 2, &b, 1).ok());

  size_t n = 0;
  ASSERT_TRUE(wal->Replay([&](const WalRecord& r) {
                    ++n;
                    EXPECT_EQ(r.key.a, 1);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(n, 1u);  // only the intact record replays
}

TEST(Wal, ResetDropsRecordsKeepsLsnMonotonic) {
  auto fs = MakeMemFileSystem();
  auto wal = WriteAheadLog::Open(fs, "log", 0).ValueOrDie();
  (void)wal->Append(WalOp::kPut, BtreeKey{1, 0}, "a").ValueOrDie();
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->size_bytes(), 0u);
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{2, 0}, "b").ValueOrDie(), 2u);
  size_t n = 0;
  ASSERT_TRUE(wal->Replay([&](const WalRecord&) {
                    ++n;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(n, 1u);
}

// ---------------------------------------------------------------------------
// Group commit (AppendBatch): one buffered write + at most one sync per
// batch, per-record LSNs, on-disk bytes indistinguishable from single
// appends.
// ---------------------------------------------------------------------------

TEST(WalGroupCommit, BatchRoundTripReplay) {
  auto fs = MakeMemFileSystem();
  auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
  std::vector<WalAppendOp> ops = {
      {WalOp::kPut, BtreeKey{1, 0}, "alpha"},
      {WalOp::kDelete, BtreeKey{2, 0}, ""},
      {WalOp::kPut, BtreeKey{3, 0}, "gamma"},
  };
  uint64_t first_lsn = 0;
  ASSERT_TRUE(wal->AppendBatch(ops, &first_lsn).ok());
  EXPECT_EQ(first_lsn, 1u);
  EXPECT_EQ(wal->next_lsn(), 4u);

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal->Replay([&](const WalRecord& r) {
                    records.push_back(r);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(records.size(), 3u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, first_lsn + i);
    EXPECT_EQ(records[i].op, ops[i].op);
    EXPECT_EQ(records[i].key.a, ops[i].key.a);
    EXPECT_EQ(std::string(records[i].payload.begin(), records[i].payload.end()),
              std::string(ops[i].payload));
  }
}

// A torn write in the middle of group B must recover exactly the fully
// written groups before it: all of group A replays, nothing of group B does.
TEST(WalGroupCommit, TornTailMidBatchRecoversPrecedingGroups) {
  auto fs = MakeMemFileSystem();
  auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
  std::vector<WalAppendOp> group_a = {
      {WalOp::kPut, BtreeKey{1, 0}, "a1"},
      {WalOp::kPut, BtreeKey{2, 0}, "a2"},
  };
  ASSERT_TRUE(wal->AppendBatch(group_a, nullptr).ok());
  uint64_t group_a_end = wal->size_bytes();
  std::vector<WalAppendOp> group_b = {
      {WalOp::kPut, BtreeKey{3, 0}, "b1"},
      {WalOp::kPut, BtreeKey{4, 0}, "b2"},
  };
  ASSERT_TRUE(wal->AppendBatch(group_b, nullptr).ok());
  // Tear group B's FIRST record (flip a payload byte just past group A's
  // end): replay must stop there, before any of group B.
  auto f = fs->Open("log").ValueOrDie();
  uint8_t b;
  uint64_t torn_at = group_a_end + 8;  // inside record b1's header/body
  ASSERT_TRUE(f->Read(torn_at, 1, &b).ok());
  b ^= 0xFF;
  ASSERT_TRUE(f->Write(torn_at, &b, 1).ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal->Replay([&](const WalRecord& r) {
                    records.push_back(r);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(records.size(), 2u);  // group A exactly, none of group B
  EXPECT_EQ(records[0].key.a, 1);
  EXPECT_EQ(records[1].key.a, 2);
}

// Interleaving single appends and batches keeps LSNs contiguous, and batches
// report their first LSN.
TEST(WalGroupCommit, LsnMonotonicAcrossMixedAppends) {
  auto fs = MakeMemFileSystem();
  auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{1, 0}, "single").ValueOrDie(), 1u);
  std::vector<WalAppendOp> batch = {
      {WalOp::kPut, BtreeKey{2, 0}, "b"},
      {WalOp::kPut, BtreeKey{3, 0}, "b"},
      {WalOp::kPut, BtreeKey{4, 0}, "b"},
  };
  uint64_t first_lsn = 0;
  ASSERT_TRUE(wal->AppendBatch(batch, &first_lsn).ok());
  EXPECT_EQ(first_lsn, 2u);
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{5, 0}, "single").ValueOrDie(), 5u);
  // Empty batches consume no LSNs.
  ASSERT_TRUE(wal->AppendBatch(Span<const WalAppendOp>(), &first_lsn).ok());
  EXPECT_EQ(first_lsn, 6u);
  EXPECT_EQ(wal->next_lsn(), 6u);

  std::vector<uint64_t> lsns;
  ASSERT_TRUE(wal->Replay([&](const WalRecord& r) {
                    lsns.push_back(r.lsn);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(lsns.size(), 5u);
  for (size_t i = 0; i < lsns.size(); ++i) EXPECT_EQ(lsns[i], i + 1);
}

}  // namespace
}  // namespace tc
