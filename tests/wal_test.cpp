#include <gtest/gtest.h>

#include "lsm/wal.h"

namespace tc {
namespace {

TEST(Wal, AppendAndReplay) {
  auto fs = MakeMemFileSystem();
  auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{1, 0}, "hello").ValueOrDie(), 1u);
  EXPECT_EQ(wal->Append(WalOp::kDelete, BtreeKey{2, 0}, "").ValueOrDie(), 2u);
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{3, 0}, "x").ValueOrDie(), 3u);

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal->Replay([&](const WalRecord& r) {
                    records.push_back(r);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[0].op, WalOp::kPut);
  EXPECT_EQ(records[0].key.a, 1);
  EXPECT_EQ(std::string(records[0].payload.begin(), records[0].payload.end()),
            "hello");
  EXPECT_EQ(records[1].op, WalOp::kDelete);
}

TEST(Wal, ReopenContinuesLsns) {
  auto fs = MakeMemFileSystem();
  {
    auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
    (void)wal->Append(WalOp::kPut, BtreeKey{1, 0}, "a").ValueOrDie();
    (void)wal->Append(WalOp::kPut, BtreeKey{2, 0}, "b").ValueOrDie();
  }
  auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
  EXPECT_EQ(wal->next_lsn(), 3u);
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{3, 0}, "c").ValueOrDie(), 3u);
}

TEST(Wal, TornTailIsIgnored) {
  auto fs = MakeMemFileSystem();
  auto wal = WriteAheadLog::Open(fs, "log", 1).ValueOrDie();
  (void)wal->Append(WalOp::kPut, BtreeKey{1, 0}, "good").ValueOrDie();
  (void)wal->Append(WalOp::kPut, BtreeKey{2, 0}, "torn-record").ValueOrDie();
  // Corrupt the tail record's payload byte -> crc mismatch.
  auto f = fs->Open("log").ValueOrDie();
  uint64_t size = f->Size();
  uint8_t b;
  ASSERT_TRUE(f->Read(size - 2, 1, &b).ok());
  b ^= 0xFF;
  ASSERT_TRUE(f->Write(size - 2, &b, 1).ok());

  size_t n = 0;
  ASSERT_TRUE(wal->Replay([&](const WalRecord& r) {
                    ++n;
                    EXPECT_EQ(r.key.a, 1);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(n, 1u);  // only the intact record replays
}

TEST(Wal, ResetDropsRecordsKeepsLsnMonotonic) {
  auto fs = MakeMemFileSystem();
  auto wal = WriteAheadLog::Open(fs, "log", 0).ValueOrDie();
  (void)wal->Append(WalOp::kPut, BtreeKey{1, 0}, "a").ValueOrDie();
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->size_bytes(), 0u);
  EXPECT_EQ(wal->Append(WalOp::kPut, BtreeKey{2, 0}, "b").ValueOrDie(), 2u);
  size_t n = 0;
  ASSERT_TRUE(wal->Replay([&](const WalRecord&) {
                    ++n;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(n, 1u);
}

}  // namespace
}  // namespace tc
