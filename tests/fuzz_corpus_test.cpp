// Always-on corpus replay: every checked-in fuzz input runs through both fuzz
// targets under the normal test harness, so the parser/schema invariants the
// fuzzers enforce are exercised in every CI run — clang and libFuzzer are
// only needed to EXTEND the corpus, not to check it.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_targets.h"

namespace tc {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(TC_FUZZ_CORPUS_DIR)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<uint8_t> ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(FuzzCorpusTest, CorpusIsCheckedIn) {
  // An empty corpus would turn the replay tests into silent no-ops.
  EXPECT_GE(CorpusFiles().size(), 15u);
}

TEST(FuzzCorpusTest, ParseAdmReplaysClean) {
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.string());
    std::vector<uint8_t> bytes = ReadAll(path);
    // The target TC_CHECK-aborts on an invariant violation; returning is the
    // pass condition.
    EXPECT_EQ(0, FuzzParseAdm(bytes.data(), bytes.size()));
  }
}

TEST(FuzzCorpusTest, DeserializeSchemaReplaysClean) {
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.string());
    std::vector<uint8_t> bytes = ReadAll(path);
    EXPECT_EQ(0, FuzzDeserializeSchema(bytes.data(), bytes.size()));
  }
}

TEST(FuzzCorpusTest, DeepNestingRejectedCleanly) {
  // The depth guard must kick in long before the stack would overflow.
  std::string deep(100000, '[');
  EXPECT_EQ(0, FuzzParseAdm(reinterpret_cast<const uint8_t*>(deep.data()),
                            deep.size()));
}

TEST(FuzzCorpusTest, OverflowingDoubleRejectedCleanly) {
  std::string text = "{\"x\": 1e999}";
  EXPECT_EQ(0, FuzzParseAdm(reinterpret_cast<const uint8_t*>(text.data()),
                            text.size()));
}

}  // namespace
}  // namespace tc
