#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/bit_packer.h"
#include "common/bytes.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/task_pool.h"

namespace tc {
namespace {

TEST(Bytes, FixedRoundTrip) {
  Buffer b;
  PutFixed16(&b, 0xBEEF);
  PutFixed32(&b, 0xDEADBEEF);
  PutFixed64(&b, 0x0123456789ABCDEFull);
  PutDouble(&b, 3.14159);
  PutFloat(&b, 2.5f);
  const uint8_t* p = b.data();
  EXPECT_EQ(GetFixed16(p), 0xBEEF);
  EXPECT_EQ(GetFixed32(p + 2), 0xDEADBEEF);
  EXPECT_EQ(GetFixed64(p + 6), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(GetDouble(p + 14), 3.14159);
  EXPECT_FLOAT_EQ(GetFloat(p + 22), 2.5f);
}

TEST(Bytes, OverwriteFixed32) {
  Buffer b(8, 0);
  OverwriteFixed32(&b, 2, 0xCAFEBABE);
  EXPECT_EQ(GetFixed32(b.data() + 2), 0xCAFEBABE);
}

TEST(Varint, RoundTripBoundaries) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    Buffer b;
    PutVarint64(&b, v);
    uint64_t out = 0;
    size_t n = GetVarint64(b.data(), b.data() + b.size(), &out);
    EXPECT_EQ(n, b.size());
    EXPECT_EQ(out, v);
  }
}

TEST(Varint, TruncatedInputFails) {
  Buffer b;
  PutVarint64(&b, 1ull << 40);
  uint64_t out = 0;
  EXPECT_EQ(GetVarint64(b.data(), b.data() + b.size() - 1, &out), 0u);
}

TEST(Varint, RandomRoundTrip) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Next() >> rng.Uniform(64);
    Buffer b;
    PutVarint64(&b, v);
    uint64_t out = 0;
    ASSERT_EQ(GetVarint64(b.data(), b.data() + b.size(), &out), b.size());
    ASSERT_EQ(out, v);
  }
}

TEST(Zigzag, RoundTrip) {
  const int64_t cases[] = {0,         1,         -1,    2, -2, INT64_MAX,
                           INT64_MIN, 123456789, -987654321};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

TEST(BitsFor, Values) {
  EXPECT_EQ(BitsFor(0), 0);
  EXPECT_EQ(BitsFor(1), 1);
  EXPECT_EQ(BitsFor(2), 2);
  EXPECT_EQ(BitsFor(3), 2);
  EXPECT_EQ(BitsFor(255), 8);
  EXPECT_EQ(BitsFor(256), 9);
}

TEST(BitPacker, RoundTripAllWidths) {
  for (int width = 0; width <= 57; ++width) {
    Buffer b;
    BitPacker packer(&b);
    Rng rng(width + 1);
    std::vector<uint64_t> values;
    for (int i = 0; i < 100; ++i) {
      uint64_t mask = width == 0 ? 0 : (width == 64 ? ~0ull : (1ull << width) - 1);
      uint64_t v = rng.Next() & mask;
      values.push_back(v);
      packer.Append(v, width);
    }
    packer.Finish();
    BitReader reader(b.data(), b.size());
    for (uint64_t v : values) {
      ASSERT_EQ(reader.Read(width), v) << "width=" << width;
    }
  }
}

TEST(BitPacker, MixedWidthsWithByteAlignment) {
  Buffer b;
  BitPacker packer(&b);
  packer.Append(5, 3);
  packer.Append(1000, 11);
  packer.Append(1, 1);
  packer.Finish();
  BitReader reader(b.data(), b.size());
  EXPECT_EQ(reader.Read(3), 5u);
  EXPECT_EQ(reader.Read(11), 1000u);
  EXPECT_EQ(reader.Read(1), 1u);
}

TEST(Crc32, KnownVector) {
  // CRC32-C("123456789") == 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32, DetectsCorruption) {
  std::string data = "hello world, this is a checksum test";
  uint32_t crc = Crc32c(data.data(), data.size());
  data[5] ^= 0x01;
  EXPECT_NE(Crc32c(data.data(), data.size()), crc);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, RangeBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

// ---------------------------------------------------------------------------
// TaskGroup: the per-owner completion/cancellation story of the shared pool.
// ---------------------------------------------------------------------------

TEST(TaskGroup, WaitCoversEverySubmittedTask) {
  TaskPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    group.Submit([&](bool canceled) {
      EXPECT_FALSE(canceled);
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(group.outstanding(), 0u);
}

TEST(TaskGroup, WaitCoversTasksSubmittedByTasks) {
  TaskPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  group.Submit([&](bool) {
    ran.fetch_add(1);
    group.Submit([&](bool) { ran.fetch_add(1); });
  });
  group.Wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(TaskGroup, CancelSkipsQueuedButNotStartedTasks) {
  TaskPool pool(1);  // single worker: deterministic queue order
  TaskGroup group(&pool);
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  std::atomic<bool> first_canceled{true};
  std::atomic<bool> second_canceled{false};
  // First task occupies the worker until released. The test waits for it to
  // START before canceling, so it must see canceled == false and run to
  // completion.
  group.Submit([&](bool canceled) {
    first_canceled.store(canceled);
    std::unique_lock<std::mutex> lock(mu);
    started = true;
    cv.notify_all();
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return started; });
  }
  // Second task is queued behind it and must observe the cancellation.
  group.Submit([&](bool canceled) { second_canceled.store(canceled); });
  group.Cancel();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  group.Wait();
  EXPECT_FALSE(first_canceled.load());
  EXPECT_TRUE(second_canceled.load());
}

TEST(TaskGroup, TwoGroupsOnOnePoolAreIndependent) {
  TaskPool pool(2);
  TaskGroup a(&pool);
  TaskGroup b(&pool);
  std::atomic<int> a_ran{0}, b_ran{0};
  a.Submit([&](bool canceled) {
    EXPECT_FALSE(canceled);
    a_ran.fetch_add(1);
  });
  b.Cancel();
  b.Submit([&](bool canceled) {
    EXPECT_TRUE(canceled);  // b's cancellation must not leak into a
    b_ran.fetch_add(1);
  });
  a.Wait();
  b.Wait();
  EXPECT_EQ(a_ran.load(), 1);
  EXPECT_EQ(b_ran.load(), 1);
}

}  // namespace
}  // namespace tc
